//! Channel-fed task queues.
//!
//! The paper's runtime model (§3): *"As soon as a s/w thread completes
//! its current task, it picks a new task from a task queue, until all
//! tasks have been completed."* [`ChannelWorkload`] is that mode for
//! the malleable pool: producers push work items into a bounded
//! crossbeam channel, gated workers drain it through a handler
//! function, and the driver stops the pool once the queue reports
//! drained.
//!
//! The open-ended [`Workload`] trait mode (used by the throughput
//! benchmarks) and this finite-queue mode cover the two execution
//! styles the paper describes for malleable applications.

use std::time::Duration;

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use rubic_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use rubic_sync::{Arc, Condvar, Mutex};

use crate::pool::Workload;

/// A one-shot broadcast flag: waiters park on a condvar until the first
/// `fire`, instead of sleep-polling an atomic.
///
/// Used for "the queue drained" and "the pool stopped" — conditions that
/// transition exactly once. The lock-free `fired` flag serves the
/// fast-path `is_fired` probes; the mutex-guarded copy is what waiters
/// sleep on, so a fire between a waiter's check and its park can never
/// be missed. `wakes` counts condvar wakeups observed by waiters — a
/// diagnostic the tests use to assert the signal produces a handful of
/// wakes, not a poll storm.
#[derive(Debug, Default)]
pub(crate) struct DrainSignal {
    fired: AtomicBool,
    state: Mutex<bool>,
    cv: Condvar,
    wakes: AtomicU64,
}

impl DrainSignal {
    /// True once `fire` was called.
    pub(crate) fn is_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Fires the signal, releasing every current and future waiter.
    /// Idempotent.
    pub(crate) fn fire(&self) {
        let mut fired = self.state.lock();
        if !*fired {
            *fired = true;
            self.fired.store(true, Ordering::Release);
            drop(fired);
            self.cv.notify_all();
        }
    }

    /// Blocks until the signal fires. Returns immediately if it already
    /// has.
    pub(crate) fn wait(&self) {
        if self.is_fired() {
            return;
        }
        let mut fired = self.state.lock();
        while !*fired {
            self.cv.wait(&mut fired);
            self.wakes.fetch_add(1, Ordering::Relaxed); // ordering: diagnostic counter
        }
    }

    /// Condvar wakeups observed across all `wait` calls (diagnostic).
    pub(crate) fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed) // ordering: diagnostic read
    }
}

/// Producer side of the queue (re-export of the crossbeam sender; clone
/// it for multiple producers, drop every clone to close the queue).
pub type TaskSender<T> = Sender<T>;

#[derive(Debug, Default)]
struct QueueState {
    processed: AtomicU64,
    drain: DrainSignal,
}

/// A cloneable handle for observing queue progress from the driver.
#[derive(Debug, Clone)]
pub struct QueueHandle {
    state: Arc<QueueState>,
}

impl QueueHandle {
    /// Items processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.state.processed.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// True once every producer hung up **and** the queue was emptied.
    /// (crossbeam's `Disconnected` error only fires under exactly those
    /// conditions, so a single flag suffices.)
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.state.drain.is_fired()
    }

    /// Blocks until the queue drains. Event-driven: the caller parks on
    /// a condvar that the worker observing disconnect+empty notifies —
    /// no sleep-poll loop.
    pub fn wait_drained(&self) {
        self.state.drain.wait();
    }

    /// Condvar wakeups observed by `wait_drained` callers so far. A
    /// healthy drain wakes each waiter O(1) times; the regression test
    /// uses this to assert the condvar path does not degenerate into a
    /// poll storm.
    #[must_use]
    pub fn drain_wait_wakes(&self) -> u64 {
        self.state.drain.wakes()
    }
}

/// A pool workload that drains items from a channel through a handler.
///
/// Workers block on the shared receiver with a short timeout (so level
/// changes and pool shutdown are honoured promptly); each received item
/// is one task for the pool's throughput accounting.
///
/// ```
/// use std::time::Duration;
/// use rubic_controllers::Fixed;
/// use rubic_runtime::{queue::ChannelWorkload, MalleablePool, PoolConfig};
///
/// let (workload, sender) = ChannelWorkload::new(64, |n: u64| {
///     std::hint::black_box(n * 2);
/// });
/// let handle = workload.handle();
/// let pool = MalleablePool::start(
///     PoolConfig::new(2)
///         .initial_level(2)
///         .monitor_period(Duration::from_millis(2)),
///     workload,
///     Box::new(Fixed::new(2, 2)),
/// );
/// for n in 0..500u64 {
///     sender.send(n).unwrap();
/// }
/// drop(sender); // close the queue
/// handle.wait_drained();
/// let _report = pool.stop();
/// assert_eq!(handle.processed(), 500);
/// ```
pub struct ChannelWorkload<T, F> {
    receiver: Receiver<T>,
    handler: F,
    state: Arc<QueueState>,
}

impl<T, F> ChannelWorkload<T, F>
where
    T: Send + 'static,
    F: Fn(T) + Send + Sync + 'static,
{
    /// Creates a bounded queue of `capacity` items whose entries are
    /// processed by `handler`. Returns the workload (hand it to
    /// [`MalleablePool::start`](crate::MalleablePool::start)) and the
    /// producer handle.
    #[must_use]
    pub fn new(capacity: usize, handler: F) -> (Self, TaskSender<T>) {
        let (tx, rx) = bounded(capacity.max(1));
        (
            ChannelWorkload {
                receiver: rx,
                handler,
                state: Arc::new(QueueState::default()),
            },
            tx,
        )
    }

    /// A progress handle usable after the workload moves into the pool.
    #[must_use]
    pub fn handle(&self) -> QueueHandle {
        QueueHandle {
            state: Arc::clone(&self.state),
        }
    }
}

impl<T, F> Workload for ChannelWorkload<T, F>
where
    T: Send + 'static,
    F: Fn(T) + Send + Sync + 'static,
{
    type WorkerState = ();

    fn init_worker(&self, _tid: usize) {}

    fn run_task(&self, (): &mut ()) {
        match self.receiver.recv_timeout(Duration::from_millis(5)) {
            Ok(item) => {
                (self.handler)(item);
                self.state.processed.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
            }
            Err(RecvTimeoutError::Timeout) => {
                // Queue momentarily empty: an idle poll, not real work.
            }
            Err(RecvTimeoutError::Disconnected) => {
                // All senders gone and nothing queued: signal the
                // driver and yield until it stops the pool.
                self.state.drain.fire();
                rubic_sync::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolConfig;
    use rubic_controllers::{Ebs, Fixed};
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn drains_exactly_once_each() {
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let (workload, tx) = ChannelWorkload::new(16, move |n: u64| {
            seen2.lock().unwrap().push(n);
        });
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(3)
                .initial_level(3)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(3, 3)),
        );
        for n in 0..1_000u64 {
            tx.send(n).unwrap();
        }
        drop(tx);
        handle.wait_drained();
        let _ = pool.stop();
        let got = seen.lock().unwrap();
        assert_eq!(got.len(), 1_000);
        let unique: HashSet<u64> = got.iter().copied().collect();
        assert_eq!(unique.len(), 1_000, "duplicate or lost items");
        assert_eq!(handle.processed(), 1_000);
    }

    #[test]
    fn adaptive_controller_drives_queue_mode() {
        let (workload, tx) = ChannelWorkload::new(32, |n: u64| {
            std::hint::black_box((0..n % 64).sum::<u64>());
        });
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(4).monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Ebs::new(4)),
        );
        let producer = std::thread::spawn(move || {
            for n in 0..2_000u64 {
                tx.send(n).unwrap();
            }
        });
        producer.join().unwrap();
        handle.wait_drained();
        let report = pool.stop();
        assert_eq!(handle.processed(), 2_000);
        // Idle polls also count as pool tasks; real work dominates.
        assert!(report.total_tasks >= 2_000);
    }

    #[test]
    fn multiple_producers() {
        let (workload, tx) = ChannelWorkload::new(8, |_s: String| {});
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(2, 2)),
        );
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(format!("{p}:{i}")).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for h in producers {
            h.join().unwrap();
        }
        handle.wait_drained();
        let _ = pool.stop();
        assert_eq!(handle.processed(), 300);
    }

    #[test]
    fn wait_drained_is_event_driven_not_a_wake_storm() {
        let (workload, tx) = ChannelWorkload::new(64, |_n: u64| {
            std::thread::sleep(Duration::from_micros(100));
        });
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(2, 2)),
        );
        // Three waiters park on the drain while the queue is still busy
        // for tens of milliseconds.
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || h.wait_drained())
            })
            .collect();
        for n in 0..200u64 {
            tx.send(n).unwrap();
        }
        drop(tx);
        for w in waiters {
            w.join().unwrap();
        }
        assert!(handle.is_drained());
        let _ = pool.stop();
        // The old implementation slept 1 ms per probe: over a ~20 ms
        // drain that is dozens of wakeups per waiter. The condvar path
        // wakes each waiter O(1) times (a small allowance covers
        // spurious wakeups).
        let wakes = handle.drain_wait_wakes();
        assert!(wakes >= 1, "waiters never woke through the condvar");
        assert!(wakes <= 12, "wake storm: {wakes} wakeups for 3 waiters");
    }

    #[test]
    fn empty_queue_drains_immediately() {
        let (workload, tx) = ChannelWorkload::new(4, |_n: u32| {});
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(1)
                .initial_level(1)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(1, 1)),
        );
        drop(tx);
        handle.wait_drained();
        let _ = pool.stop();
        assert_eq!(handle.processed(), 0);
    }
}
