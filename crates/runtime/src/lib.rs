//! The malleable thread-pool runtime — Algorithm 1 of the RUBIC paper.
//!
//! A *malleable* application can change its parallelism level while
//! running (Feitelson & Rudolph's taxonomy). The paper's runtime model,
//! reproduced here:
//!
//! * Each process owns a pool of `S` worker threads, each with a unique
//!   `tid ∈ [0, S)`, a semaphore, and a **thread-local task counter**.
//! * A process-wide level variable (`L_RUBIC`) holds the number of
//!   *active* threads. Before acquiring a task, a worker compares its
//!   `tid` against the level: `tid >= L_RUBIC` means the worker parks on
//!   its semaphore (Algorithm 1). The active-path check is a single
//!   relaxed load — no system calls, no atomic RMW.
//! * A dedicated **monitoring thread** wakes every `TIME_PERIOD`
//!   (paper: 10 ms), sums the per-worker counters to get the round's
//!   throughput, feeds it to the plugged-in
//!   [`Controller`](rubic_controllers::Controller), stores the new
//!   level, and signals the semaphores of newly enabled workers
//!   (Algorithm 2 lines 20–22).
//!
//! Only each worker writes its own counter; the monitor only reads them
//! (§3.1's "no atomic instructions are necessary" — we use relaxed
//! single-writer stores, the Rust-sound equivalent).
//!
//! The paper raises the monitor's scheduler priority so it keeps running
//! under oversubscription; raising priority needs privileges we don't
//! assume, but the monitor does no task work and sleeps between samples,
//! which keeps it runnable in practice (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::time::Duration;
//! use rubic_controllers::{Ebs, PolicyConfig};
//! use rubic_runtime::{MalleablePool, PoolConfig, Workload};
//!
//! struct Spin;
//! impl Workload for Spin {
//!     type WorkerState = ();
//!     fn init_worker(&self, _tid: usize) {}
//!     fn run_task(&self, _state: &mut ()) {
//!         std::hint::black_box((0..50u64).sum::<u64>());
//!     }
//! }
//!
//! let pool = MalleablePool::start(
//!     PoolConfig::new(4).monitor_period(Duration::from_millis(2)),
//!     Spin,
//!     Box::new(Ebs::new(4)),
//! );
//! std::thread::sleep(Duration::from_millis(30));
//! let report = pool.stop();
//! assert!(report.total_tasks > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod placement;
pub mod pool;
pub mod queue;
pub mod semaphore;
pub mod sharded;
mod trc;

pub use placement::WorkerPlacement;
pub use pool::{MalleablePool, PoolConfig, PoolView, RunReport, Workload};
pub use queue::{ChannelWorkload, QueueHandle, TaskSender};
pub use semaphore::Semaphore;
pub use sharded::{ShardSender, ShardedHandle, ShardedWorkload};
