//! Feature-gated bridge to `rubic-trace` for the pool monitor.
//!
//! With the **`trace`** feature on, the monitor thread emits one
//! `MonitorRound` event per measurement interval, a `WorkerDelta` per
//! active worker, and a `LevelChange` whenever it applies a new
//! parallelism level — the runtime-side counterpart of the STM's
//! transaction events. All no-ops when the feature is off.

#[cfg(feature = "trace")]
mod enabled {
    use rubic_trace::{emit, is_enabled, EventKind};

    /// Anomaly kind codes, re-exported so watchdog call sites need no
    /// feature gates of their own.
    pub(crate) const ANOMALY_ABORT_STORM: u8 = rubic_trace::codes::ANOMALY_ABORT_STORM;
    pub(crate) const ANOMALY_LEVEL_OSCILLATION: u8 = rubic_trace::codes::ANOMALY_LEVEL_OSCILLATION;

    /// Whether a trace session is currently recording — lets the monitor
    /// skip the per-worker delta scan entirely when nobody listens.
    #[inline]
    pub(crate) fn active() -> bool {
        is_enabled()
    }

    /// One completed monitor round (Algorithm 1's measurement step):
    /// tasks and aborts completed in the interval, the level it ran at,
    /// and the throughput handed to the controller.
    #[inline]
    pub(crate) fn monitor_round(round: u64, commits: u64, level: u32, aborts: u64, t_c: f64) {
        if is_enabled() {
            emit(
                EventKind::MonitorRound,
                0,
                (round << 32) | (commits & 0xFFFF_FFFF),
                (u64::from(level) << 32) | (aborts & 0xFFFF_FFFF),
                t_c.to_bits(),
            );
        }
    }

    /// Per-worker completed-task/abort delta for one monitor round.
    #[inline]
    pub(crate) fn worker_delta(worker: usize, commits: u64, round: u64, aborts: u64) {
        if is_enabled() {
            emit(
                EventKind::WorkerDelta,
                0,
                ((worker as u64) << 32) | (commits & 0xFFFF_FFFF),
                round,
                aborts,
            );
        }
    }

    /// The monitor applied a new parallelism level.
    #[inline]
    pub(crate) fn level_change(old: u32, new: u32, round: u64) {
        if is_enabled() {
            emit(
                EventKind::LevelChange,
                0,
                u64::from(old),
                u64::from(new),
                round,
            );
        }
    }

    /// A worker parked on the gate (`parked`) or resumed from it.
    #[inline]
    pub(crate) fn worker_park(tid: usize, level: u32, parked: bool) {
        if is_enabled() {
            emit(
                EventKind::WorkerPark,
                u8::from(!parked),
                tid as u64,
                u64::from(level),
                0,
            );
        }
    }

    /// A dry worker moved `n` tasks from `victim`'s shard to its own
    /// local buffer; `victim_len` is the shard length before the steal.
    /// The flags byte is a bitfield: bit 0 set when the victim's owner
    /// sat above the level (gated), bit 1 set when the steal crossed
    /// sockets under the pool's worker placement.
    #[inline]
    pub(crate) fn task_steal(
        thief: usize,
        victim: usize,
        n: usize,
        victim_len: usize,
        gated: bool,
        cross_socket: bool,
    ) {
        if is_enabled() {
            emit(
                EventKind::TaskSteal,
                u8::from(gated) | (u8::from(cross_socket) << 1),
                ((thief as u64) << 32) | (victim as u64 & 0xFFFF_FFFF),
                n as u64,
                victim_len as u64,
            );
        }
    }

    /// An anomaly watchdog fired: records the `Anomaly` event
    /// (`kind` is one of `rubic_trace::codes::ANOMALY_*`) and asks the
    /// trace collector to freeze the flight recorder into a post-mortem
    /// bundle.
    #[inline]
    pub(crate) fn anomaly(kind: u8, observed: u64, threshold: u64, round: u64) {
        if is_enabled() {
            emit(EventKind::Anomaly, kind, observed, threshold, round);
            rubic_trace::request_postmortem(kind);
        }
    }
}

#[cfg(feature = "trace")]
pub(crate) use enabled::*;

#[cfg(not(feature = "trace"))]
mod disabled {
    /// Mirrors of `rubic_trace::codes::ANOMALY_*` for no-trace builds.
    pub(crate) const ANOMALY_ABORT_STORM: u8 = 0;
    pub(crate) const ANOMALY_LEVEL_OSCILLATION: u8 = 1;

    #[inline(always)]
    pub(crate) fn active() -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn monitor_round(_round: u64, _commits: u64, _level: u32, _aborts: u64, _t_c: f64) {}

    #[inline(always)]
    pub(crate) fn worker_delta(_worker: usize, _commits: u64, _round: u64, _aborts: u64) {}

    #[inline(always)]
    pub(crate) fn level_change(_old: u32, _new: u32, _round: u64) {}

    #[inline(always)]
    pub(crate) fn worker_park(_tid: usize, _level: u32, _parked: bool) {}

    #[inline(always)]
    pub(crate) fn task_steal(
        _thief: usize,
        _victim: usize,
        _n: usize,
        _victim_len: usize,
        _gated: bool,
        _cross_socket: bool,
    ) {
    }

    #[inline(always)]
    pub(crate) fn anomaly(_kind: u8, _observed: u64, _threshold: u64, _round: u64) {}
}

#[cfg(not(feature = "trace"))]
pub(crate) use disabled::*;
