//! The malleable worker pool and its monitoring thread.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use rubic_controllers::{Controller, Sample};
use rubic_metrics::LevelTrace;

use crate::semaphore::Semaphore;

/// A throughput-oriented workload run by the pool's workers.
///
/// One call to [`run_task`](Workload::run_task) is one *task* in the
/// paper's sense — for TM workloads, typically one transaction (so the
/// pool's task rate is the commit rate the controller consumes).
/// Implementations must be safe to call concurrently from many workers.
pub trait Workload: Send + Sync + 'static {
    /// Per-worker scratch state (RNG, reusable buffers, ...).
    type WorkerState: Send;

    /// Builds the scratch state for worker `tid`.
    fn init_worker(&self, tid: usize) -> Self::WorkerState;

    /// Executes one task. Called repeatedly by active workers.
    fn run_task(&self, state: &mut Self::WorkerState);

    /// Returns (and resets) the number of transaction aborts this
    /// worker experienced since the previous call. Called by the worker
    /// loop after each task so the pool can account aborts per worker
    /// and per monitoring interval, symmetrically with the completed-
    /// task counters. The default reports none — non-transactional
    /// workloads need no change; STM workloads typically forward
    /// `rubic_stm::take_thread_aborts()`.
    fn drain_aborts(&self, state: &mut Self::WorkerState) -> u64 {
        let _ = state;
        0
    }
}

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Pool size `S` — the number of worker threads created. The
    /// controller may activate at most this many.
    pub size: u32,
    /// Initial parallelism level (the paper starts at 1).
    pub initial_level: u32,
    /// Monitoring period (`TIME_PERIOD`; the paper samples every 10 ms).
    pub period: Duration,
    /// Optional cap on the number of tasks executed; the pool shuts
    /// itself down once the budget is exhausted (the paper's
    /// "task queue drained, workers terminate" mode).
    pub task_budget: Option<u64>,
    /// Livelock watchdog: after this many *consecutive* monitor rounds
    /// with zero completed tasks (while workers are supposedly active),
    /// the monitor emits a diagnostic and counts a stall warning in the
    /// [`RunReport`]. An abort storm that commits nothing looks exactly
    /// like this. Default 100 rounds (1 s at the paper's 10 ms period).
    pub stall_rounds: u32,
    /// Label used in thread names and reports.
    pub name: String,
}

impl PoolConfig {
    /// Config with `size` workers, level 1, the paper's 10 ms period,
    /// and no task budget.
    #[must_use]
    pub fn new(size: u32) -> Self {
        PoolConfig {
            size: size.max(1),
            initial_level: 1,
            period: Duration::from_millis(10),
            task_budget: None,
            stall_rounds: 100,
            name: "rubic-pool".to_string(),
        }
    }

    /// Sets the initial parallelism level (clamped to `[1, size]`).
    #[must_use]
    pub fn initial_level(mut self, level: u32) -> Self {
        self.initial_level = level.clamp(1, self.size);
        self
    }

    /// Sets the monitoring period.
    #[must_use]
    pub fn monitor_period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Caps the total number of tasks.
    #[must_use]
    pub fn task_budget(mut self, tasks: u64) -> Self {
        self.task_budget = Some(tasks);
        self
    }

    /// Sets the livelock watchdog threshold (consecutive zero-progress
    /// monitor rounds before a stall warning; minimum 1).
    #[must_use]
    pub fn stall_rounds(mut self, rounds: u32) -> Self {
        self.stall_rounds = rounds.max(1);
        self
    }

    /// Names the pool (thread names, reports).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// Shared state between workers and the monitor.
struct Shared {
    /// `L_RUBIC`: number of active workers. Workers with
    /// `tid >= level` park.
    ///
    /// `level`, `running` and `budget` are each padded onto their own
    /// cache line: every worker polls `level`/`running` on every task
    /// and RMWs `budget`, so letting any two share a line would
    /// false-share the hottest loads in the pool with the hottest
    /// store (`budget`'s `fetch_sub`).
    level: CachePadded<AtomicU32>,
    running: CachePadded<AtomicBool>,
    semaphores: Vec<Semaphore>,
    /// Per-worker completed-task counters. Single-writer (the owning
    /// worker); the monitor only reads. Relaxed everywhere — the
    /// sound equivalent of the paper's plain thread-local counters.
    counters: Vec<CachePadded<AtomicU64>>,
    /// Per-worker abort counters, same single-writer discipline as
    /// `counters`: the worker accumulates `Workload::drain_aborts`
    /// output, the monitor reads interval deltas.
    aborts: Vec<CachePadded<AtomicU64>>,
    /// Remaining task budget; negative means "exhausted, stop".
    /// `i64::MAX` when unbounded.
    budget: CachePadded<AtomicI64>,
    /// Tasks that panicked instead of completing (see `worker_loop`).
    panics: AtomicU64,
    /// Stall warnings raised by the monitor's livelock watchdog.
    stalls: AtomicU64,
}

impl Shared {
    fn new(cfg: &PoolConfig) -> Self {
        Shared {
            level: CachePadded::new(AtomicU32::new(cfg.initial_level.clamp(1, cfg.size))),
            running: CachePadded::new(AtomicBool::new(true)),
            semaphores: (0..cfg.size).map(|_| Semaphore::new(0)).collect(),
            counters: (0..cfg.size)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            aborts: (0..cfg.size)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            budget: CachePadded::new(AtomicI64::new(
                cfg.task_budget
                    .map_or(i64::MAX, |b| i64::try_from(b).unwrap_or(i64::MAX)),
            )),
            panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        }
    }

    fn shutdown(&self) {
        self.running.store(false, Ordering::Release);
        for sem in &self.semaphores {
            sem.signal();
        }
    }

    fn total_tasks(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    fn total_aborts(&self) -> u64 {
        self.aborts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// A running malleable pool: `size` workers plus one monitoring thread.
///
/// Dropping the pool stops and joins everything; prefer
/// [`stop`](MalleablePool::stop) to also receive the [`RunReport`].
pub struct MalleablePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<LevelTrace>>,
    started: Instant,
    name: String,
}

impl MalleablePool {
    /// Spawns the workers and the monitoring thread and starts running
    /// `workload` under `controller`.
    ///
    /// # Panics
    /// Panics if worker threads cannot be spawned.
    #[must_use]
    pub fn start<W: Workload>(
        cfg: PoolConfig,
        workload: W,
        controller: Box<dyn Controller>,
    ) -> Self {
        let shared = Arc::new(Shared::new(&cfg));
        let workload = Arc::new(workload);

        let workers: Vec<JoinHandle<()>> = (0..cfg.size as usize)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let workload = Arc::clone(&workload);
                std::thread::Builder::new()
                    .name(format!("{}-w{}", cfg.name, tid))
                    .spawn(move || worker_loop(tid, &shared, &*workload))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        let monitor = {
            let shared = Arc::clone(&shared);
            let period = cfg.period;
            let stall_rounds = cfg.stall_rounds.max(1);
            std::thread::Builder::new()
                .name(format!("{}-monitor", cfg.name))
                .spawn(move || monitor_loop(&shared, period, stall_rounds, controller))
                .expect("failed to spawn monitor thread")
        };

        MalleablePool {
            shared,
            workers,
            monitor: Some(monitor),
            started: Instant::now(),
            name: cfg.name,
        }
    }

    /// The current parallelism level.
    #[must_use]
    pub fn level(&self) -> u32 {
        self.shared.level.load(Ordering::Relaxed)
    }

    /// Tasks completed so far across all workers.
    #[must_use]
    pub fn total_tasks(&self) -> u64 {
        self.shared.total_tasks()
    }

    /// True while the pool accepts work (false once stopped or the task
    /// budget ran out).
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::Acquire)
    }

    /// Blocks until the task budget is exhausted (or `stop` is called
    /// from another thread). Returns immediately for unbounded pools
    /// that were already stopped.
    pub fn wait_budget_exhausted(&self) {
        while self.is_running() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the pool, joins all threads, and reports the run.
    #[must_use]
    pub fn stop(mut self) -> RunReport {
        // Capture the duration at the moment shutdown is *initiated*:
        // joining can take up to a park-timeout per worker, and counting
        // that drain into `elapsed` deflates every throughput number
        // derived from the report (the shorter the run, the worse).
        let elapsed = self.started.elapsed();
        self.shared.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let trace = self
            .monitor
            .take()
            .map(|m| m.join().unwrap_or_default())
            .unwrap_or_default();
        let per_worker: Vec<u64> = self
            .shared
            .counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let per_worker_aborts: Vec<u64> = self
            .shared
            .aborts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        RunReport {
            name: std::mem::take(&mut self.name),
            total_tasks: per_worker.iter().sum(),
            total_aborts: per_worker_aborts.iter().sum(),
            per_worker,
            per_worker_aborts,
            elapsed,
            worker_panics: self.shared.panics.load(Ordering::Relaxed),
            stall_warnings: self.shared.stalls.load(Ordering::Relaxed),
            trace,
        }
    }
}

impl Drop for MalleablePool {
    fn drop(&mut self) {
        self.shared.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }
}

/// What a completed pool run produced.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Pool name.
    pub name: String,
    /// Total completed tasks.
    pub total_tasks: u64,
    /// Total transaction aborts reported by the workload's
    /// [`Workload::drain_aborts`] across all workers (0 for workloads
    /// that don't report aborts).
    pub total_aborts: u64,
    /// Tasks per worker (index = tid). Gated workers show the effect of
    /// the level trace directly: high tids complete few or no tasks.
    pub per_worker: Vec<u64>,
    /// Aborts per worker (index = tid), symmetric with `per_worker`.
    pub per_worker_aborts: Vec<u64>,
    /// Wall-clock duration from start to the moment `stop` was called
    /// (thread-join drain time excluded).
    pub elapsed: Duration,
    /// Tasks whose `run_task` panicked. The panics are caught, the
    /// worker survives with freshly initialised state, and the count
    /// surfaces here so a harness can fail loudly on any non-zero value.
    pub worker_panics: u64,
    /// Times the livelock watchdog fired (no completed task for
    /// `stall_rounds` consecutive monitor rounds).
    pub stall_warnings: u64,
    /// `(round, level, throughput)` trace recorded by the monitor.
    pub trace: LevelTrace,
}

impl RunReport {
    /// Mean task throughput over the whole run (tasks per second).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_tasks as f64 / secs
        }
    }

    /// Fraction of transaction attempts that aborted:
    /// `aborts / (tasks + aborts)`. `0.0` when the workload reports no
    /// aborts (either none happened or it doesn't implement
    /// [`Workload::drain_aborts`]).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.total_tasks + self.total_aborts;
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts as f64 / attempts as f64
        }
    }
}

/// Algorithm 1: gate on `tid >= L_RUBIC`, then run one task and bump the
/// thread-local counter.
fn worker_loop<W: Workload>(tid: usize, shared: &Shared, workload: &W) {
    let mut state = workload.init_worker(tid);
    let tid_u32 = tid as u32;
    // Fallback timeout: if a semaphore signal is ever missed (or the
    // level drops and rises between our gate check and our park), the
    // worker re-examines the gate within this bound.
    let park_timeout = Duration::from_millis(50);

    while shared.running.load(Ordering::Acquire) {
        // The gate (Algorithm 1, AcquireTask): a single relaxed load on
        // the hot path; the semaphore wait only happens when gated.
        if tid_u32 >= shared.level.load(Ordering::Relaxed) {
            let _ = shared.semaphores[tid].wait_timeout(park_timeout);
            continue; // re-check gate and running flag
        }

        // Task budget (finite-queue mode).
        if shared.budget.fetch_sub(1, Ordering::AcqRel) <= 0 {
            shared.shutdown();
            break;
        }

        // A panicking task must not take the whole pool down (the pool
        // is a shared runtime; one bad task is the workload's bug, not
        // grounds to deadlock `stop()` on a dead worker). Catch it,
        // count it, and rebuild the scratch state — the panic may have
        // left it half-updated.
        let completed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            workload.run_task(&mut state);
        }))
        .is_ok();
        if !completed {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            state = workload.init_worker(tid);
            continue; // the task did not complete; don't count it
        }

        // Single-writer counter: plain add, relaxed. Only the monitor
        // reads it.
        let c = &shared.counters[tid];
        c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);

        // Abort accounting, same single-writer discipline: the workload
        // drains its thread-local abort count (0 for non-TM workloads —
        // the default impl short-circuits and the store is skipped).
        let aborted = workload.drain_aborts(&mut state);
        if aborted > 0 {
            let a = &shared.aborts[tid];
            a.store(a.load(Ordering::Relaxed) + aborted, Ordering::Relaxed);
        }
    }
}

/// The monitoring thread: measure throughput each round, consult the
/// controller, apply the level, signal newly enabled workers.
fn monitor_loop(
    shared: &Shared,
    period: Duration,
    stall_rounds: u32,
    mut controller: Box<dyn Controller>,
) -> LevelTrace {
    let mut trace = LevelTrace::new();
    let mut prev_total = 0u64;
    let mut prev_aborts = 0u64;
    let mut prev_worker: Vec<u64> = vec![0; shared.counters.len()];
    let mut prev_worker_aborts: Vec<u64> = vec![0; shared.aborts.len()];
    let mut prev_instant = Instant::now();
    let mut round = 0u64;
    let mut zero_progress_rounds = 0u32;

    while shared.running.load(Ordering::Acquire) {
        std::thread::sleep(period);
        let now = Instant::now();
        let elapsed = now.duration_since(prev_instant).as_secs_f64();
        prev_instant = now;

        let total = shared.total_tasks();
        let delta = total - prev_total;
        let t_c = if elapsed > 0.0 {
            delta as f64 / elapsed
        } else {
            0.0
        };
        prev_total = total;

        let aborts_total = shared.total_aborts();
        let abort_delta = aborts_total - prev_aborts;
        prev_aborts = aborts_total;

        let level = shared.level.load(Ordering::Relaxed);

        crate::trc::monitor_round(round, delta, level, abort_delta, t_c);
        if crate::trc::active() {
            for (tid, (pw, pa)) in prev_worker
                .iter_mut()
                .zip(prev_worker_aborts.iter_mut())
                .enumerate()
            {
                let w_total = shared.counters[tid].load(Ordering::Relaxed);
                let a_total = shared.aborts[tid].load(Ordering::Relaxed);
                let (w_delta, a_delta) = (w_total - *pw, a_total - *pa);
                *pw = w_total;
                *pa = a_total;
                if w_delta > 0 || a_delta > 0 {
                    crate::trc::worker_delta(tid, w_delta, round, a_delta);
                }
            }
        }

        // Livelock watchdog: active workers that complete nothing round
        // after round are stuck — classically an abort storm where every
        // transaction keeps conflicting and none commits. There is no
        // safe automatic remedy (lowering the level further masks the
        // bug), so diagnose loudly and keep counting.
        if delta == 0 && shared.running.load(Ordering::Acquire) {
            zero_progress_rounds += 1;
            if zero_progress_rounds >= stall_rounds {
                shared.stalls.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "[{}] watchdog: no task completed for {} monitor rounds \
                     (round {}, level {}) — possible abort storm or livelock",
                    std::thread::current().name().unwrap_or("rubic-monitor"),
                    zero_progress_rounds,
                    round,
                    level,
                );
                zero_progress_rounds = 0;
            }
        } else {
            zero_progress_rounds = 0;
        }

        let new_level = controller
            .decide(Sample {
                throughput: t_c,
                level,
                round,
            })
            .clamp(1, shared.semaphores.len() as u32);

        trace.push_with_aborts(round, level, t_c, abort_delta);
        round += 1;

        if new_level != level {
            crate::trc::level_change(level, new_level, round);
            shared.level.store(new_level, Ordering::Relaxed);
            // Wake the newly enabled workers (Algorithm 2 lines 20-22).
            if new_level > level {
                for tid in level..new_level {
                    shared.semaphores[tid as usize].signal();
                }
            }
            // Workers above the new level park themselves at their next
            // gate check; no action needed here.
        }
    }

    // The shutdown flag flips mid-sleep, so the loop exits with a
    // partial interval unrecorded. Short runs (a handful of periods)
    // lose a measurable share of their trace without it — fold the tail
    // in as a final sample instead of discarding the work it measured.
    let elapsed = prev_instant.elapsed().as_secs_f64();
    let total = shared.total_tasks();
    if elapsed > 0.0 && total > prev_total {
        let delta = total - prev_total;
        let t_c = delta as f64 / elapsed;
        let abort_delta = shared.total_aborts() - prev_aborts;
        let level = shared.level.load(Ordering::Relaxed);
        crate::trc::monitor_round(round, delta, level, abort_delta, t_c);
        trace.push_with_aborts(round, level, t_c, abort_delta);
    }
    trace
}

impl<W: Workload> Workload for Arc<W> {
    type WorkerState = W::WorkerState;

    fn init_worker(&self, tid: usize) -> W::WorkerState {
        W::init_worker(self, tid)
    }

    fn run_task(&self, state: &mut W::WorkerState) {
        W::run_task(self, state);
    }

    fn drain_aborts(&self, state: &mut W::WorkerState) -> u64 {
        W::drain_aborts(self, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubic_controllers::{Ebs, Fixed};

    /// Workload that spins briefly; tasks complete fast enough for
    /// milliseconds-scale tests.
    struct Spin;
    impl Workload for Spin {
        type WorkerState = ();
        fn init_worker(&self, _tid: usize) {}
        fn run_task(&self, _state: &mut ()) {
            std::hint::black_box((0..100u64).fold(0, |a, b| a ^ b));
        }
    }

    fn fixed_pool(size: u32, level: u32) -> MalleablePool {
        MalleablePool::start(
            PoolConfig::new(size)
                .initial_level(level)
                .monitor_period(Duration::from_millis(2))
                .name("test"),
            Spin,
            Box::new(Fixed::new(level, size)),
        )
    }

    #[test]
    fn runs_and_stops() {
        let pool = fixed_pool(4, 2);
        std::thread::sleep(Duration::from_millis(30));
        let report = pool.stop();
        assert!(report.total_tasks > 0, "no tasks ran");
        assert_eq!(report.per_worker.len(), 4);
        assert!(!report.trace.is_empty(), "monitor recorded nothing");
    }

    #[test]
    fn gated_workers_do_no_work() {
        let pool = fixed_pool(4, 1);
        std::thread::sleep(Duration::from_millis(40));
        let report = pool.stop();
        // Only worker 0 is active. Workers 2..4 must be idle; worker 1
        // may run a handful of tasks before the first gate check.
        assert!(report.per_worker[0] > 0);
        assert_eq!(report.per_worker[2], 0, "{:?}", report.per_worker);
        assert_eq!(report.per_worker[3], 0, "{:?}", report.per_worker);
    }

    #[test]
    fn level_changes_wake_workers() {
        // Start at level 1 with a controller that climbs (EBS on a
        // plateau climbs +1 per round); higher-tid workers must
        // eventually run tasks.
        let pool = MalleablePool::start(
            PoolConfig::new(3)
                .initial_level(1)
                .monitor_period(Duration::from_millis(2)),
            Spin,
            Box::new(Ebs::new(3)),
        );
        // Deadline-based: under CPU contention (e.g. concurrent bench
        // runs) a fixed sleep is flaky.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if pool.level() == 3 && pool.total_tasks() > 0 {
                // Give the newly enabled workers a beat to run.
                std::thread::sleep(Duration::from_millis(50));
                break;
            }
            assert!(Instant::now() < deadline, "level never reached 3");
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = pool.stop();
        assert!(
            report.per_worker.iter().all(|&t| t > 0),
            "all workers should have been enabled: {:?}",
            report.per_worker
        );
    }

    #[test]
    fn task_budget_stops_pool() {
        let pool = MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .task_budget(100)
                .monitor_period(Duration::from_millis(2)),
            Spin,
            Box::new(Fixed::new(2, 2)),
        );
        pool.wait_budget_exhausted();
        let report = pool.stop();
        // fetch_sub semantics: exactly `budget` tasks run.
        assert_eq!(report.total_tasks, 100);
    }

    #[test]
    fn trace_levels_respect_bounds() {
        let pool = MalleablePool::start(
            PoolConfig::new(4).monitor_period(Duration::from_millis(1)),
            Spin,
            Box::new(Ebs::new(4)),
        );
        std::thread::sleep(Duration::from_millis(40));
        let report = pool.stop();
        for p in report.trace.points() {
            assert!((1..=4).contains(&p.level));
        }
        // Rounds are recorded monotonically.
        let rounds: Vec<u64> = report.trace.points().iter().map(|p| p.round).collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn throughput_is_positive() {
        let pool = fixed_pool(2, 2);
        std::thread::sleep(Duration::from_millis(30));
        let report = pool.stop();
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn drop_without_stop_joins_cleanly() {
        let pool = fixed_pool(2, 1);
        std::thread::sleep(Duration::from_millis(10));
        drop(pool); // must not hang or panic
    }

    #[test]
    fn abort_accounting_flows_to_report_and_trace() {
        // Every third task "aborts once first": drain_aborts reports a
        // synthetic retry so the counters exercise the same path a real
        // STM workload uses via take_thread_aborts().
        struct Flaky;
        impl Workload for Flaky {
            type WorkerState = u64; // tasks run by this worker
            fn init_worker(&self, _tid: usize) -> u64 {
                0
            }
            fn run_task(&self, state: &mut u64) {
                *state += 1;
                std::hint::black_box((0..100u64).fold(0, |a, b| a ^ b));
            }
            fn drain_aborts(&self, state: &mut u64) -> u64 {
                // `is_multiple_of` postdates the 1.75 MSRV.
                #[allow(clippy::manual_is_multiple_of)]
                u64::from(*state % 3 == 0)
            }
        }
        let pool = MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .monitor_period(Duration::from_millis(2))
                .task_budget(300),
            Flaky,
            Box::new(Fixed::new(2, 2)),
        );
        pool.wait_budget_exhausted();
        let report = pool.stop();
        assert!(report.total_aborts > 0, "synthetic aborts not drained");
        assert_eq!(
            report.per_worker_aborts.iter().sum::<u64>(),
            report.total_aborts
        );
        // The monitor's last sample may miss a straggler abort store
        // (worker bumps its task counter before its abort counter), so
        // the trace can undercount the report — never overcount.
        assert!(report.trace.total_aborts() <= report.total_aborts);
        let rate = report.abort_rate();
        assert!(rate > 0.0 && rate < 1.0, "abort_rate = {rate}");
    }

    #[test]
    fn abort_rate_zero_when_unreported() {
        let pool = fixed_pool(2, 2);
        std::thread::sleep(Duration::from_millis(20));
        let report = pool.stop();
        assert_eq!(report.total_aborts, 0);
        assert_eq!(report.abort_rate(), 0.0);
    }

    #[test]
    fn per_worker_state_is_initialised_per_tid() {
        use std::sync::Mutex;
        struct Recorder(Mutex<Vec<usize>>);
        struct W(Arc<Recorder>);
        impl Workload for W {
            type WorkerState = usize;
            fn init_worker(&self, tid: usize) -> usize {
                self.0 .0.lock().unwrap().push(tid);
                tid
            }
            fn run_task(&self, _state: &mut usize) {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let pool = MalleablePool::start(
            PoolConfig::new(3).monitor_period(Duration::from_millis(5)),
            W(Arc::clone(&rec)),
            Box::new(Fixed::new(1, 3)),
        );
        std::thread::sleep(Duration::from_millis(20));
        let _ = pool.stop();
        let mut tids = rec.0.lock().unwrap().clone();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2]);
    }
}
