//! The malleable worker pool and its monitoring thread.

use std::time::{Duration, Instant};

use rubic_sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use rubic_sync::thread::JoinHandle;
use rubic_sync::Arc;

use crossbeam_utils::CachePadded;
use rubic_controllers::{Controller, Sample};
use rubic_metrics::LevelTrace;

use crate::placement::WorkerPlacement;
use crate::queue::DrainSignal;
use crate::semaphore::Semaphore;

/// A throughput-oriented workload run by the pool's workers.
///
/// One call to [`run_task`](Workload::run_task) is one *task* in the
/// paper's sense — for TM workloads, typically one transaction (so the
/// pool's task rate is the commit rate the controller consumes).
/// Implementations must be safe to call concurrently from many workers.
pub trait Workload: Send + Sync + 'static {
    /// Per-worker scratch state (RNG, reusable buffers, ...).
    type WorkerState: Send;

    /// Builds the scratch state for worker `tid`.
    fn init_worker(&self, tid: usize) -> Self::WorkerState;

    /// Executes one task. Called repeatedly by active workers.
    fn run_task(&self, state: &mut Self::WorkerState);

    /// Called once by [`MalleablePool::start`] with a read-only view of
    /// the pool's gating state (current level, pool size). Queue-backed
    /// workloads use it to steer work *away* from shards owned by gated
    /// workers; the default ignores it.
    fn attach(&self, view: PoolView) {
        let _ = view;
    }

    /// Called by the worker loop immediately before the worker parks
    /// (its `tid` fell above the level) and once when it exits. A
    /// workload that buffers tasks per worker must return them to
    /// steal-visible storage here, so a level decrease can never strand
    /// tasks on a parked worker. The default does nothing.
    fn on_park(&self, state: &mut Self::WorkerState) {
        let _ = state;
    }

    /// Returns (and resets) the number of transaction aborts this
    /// worker experienced since the previous call. Called by the worker
    /// loop after each task so the pool can account aborts per worker
    /// and per monitoring interval, symmetrically with the completed-
    /// task counters. The default reports none — non-transactional
    /// workloads need no change; STM workloads typically forward
    /// `rubic_stm::take_thread_aborts()`.
    fn drain_aborts(&self, state: &mut Self::WorkerState) -> u64 {
        let _ = state;
        0
    }

    /// Cumulative `(local, remote)` steal counts, if the workload
    /// tracks steal locality (see
    /// [`ShardedWorkload`](crate::ShardedWorkload)). Read once by
    /// [`MalleablePool::stop`] to fill the [`RunReport`]'s
    /// steal-locality fields; the default reports nothing.
    fn steal_locality(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Pool size `S` — the number of worker threads created. The
    /// controller may activate at most this many.
    pub size: u32,
    /// Initial parallelism level (the paper starts at 1).
    pub initial_level: u32,
    /// Monitoring period (`TIME_PERIOD`; the paper samples every 10 ms).
    pub period: Duration,
    /// Optional cap on the number of tasks executed; the pool shuts
    /// itself down once the budget is exhausted (the paper's
    /// "task queue drained, workers terminate" mode).
    pub task_budget: Option<u64>,
    /// Livelock watchdog: after this many *consecutive* monitor rounds
    /// with zero completed tasks (while workers are supposedly active),
    /// the monitor emits a diagnostic and counts a stall warning in the
    /// [`RunReport`]. An abort storm that commits nothing looks exactly
    /// like this. Default 100 rounds (1 s at the paper's 10 ms period).
    pub stall_rounds: u32,
    /// Worker-to-socket assignment (default: flat — one socket, the
    /// pre-topology behaviour). Determines the fill order as the level
    /// rises (tid order is activation order) and which steals count as
    /// local vs. cross-socket.
    pub placement: WorkerPlacement,
    /// Label used in thread names and reports.
    pub name: String,
}

impl PoolConfig {
    /// Config with `size` workers, level 1, the paper's 10 ms period,
    /// and no task budget.
    #[must_use]
    pub fn new(size: u32) -> Self {
        PoolConfig {
            size: size.max(1),
            initial_level: 1,
            period: Duration::from_millis(10),
            task_budget: None,
            stall_rounds: 100,
            placement: WorkerPlacement::flat(size.max(1)),
            name: "rubic-pool".to_string(),
        }
    }

    /// Sets the initial parallelism level (clamped to `[1, size]`).
    #[must_use]
    pub fn initial_level(mut self, level: u32) -> Self {
        self.initial_level = level.clamp(1, self.size);
        self
    }

    /// Sets the monitoring period.
    #[must_use]
    pub fn monitor_period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Caps the total number of tasks.
    #[must_use]
    pub fn task_budget(mut self, tasks: u64) -> Self {
        self.task_budget = Some(tasks);
        self
    }

    /// Sets the livelock watchdog threshold (consecutive zero-progress
    /// monitor rounds before a stall warning; minimum 1).
    #[must_use]
    pub fn stall_rounds(mut self, rounds: u32) -> Self {
        self.stall_rounds = rounds.max(1);
        self
    }

    /// Sets the worker-to-socket assignment.
    ///
    /// # Panics
    /// Panics if the placement does not cover exactly `size` workers.
    #[must_use]
    pub fn placement(mut self, placement: WorkerPlacement) -> Self {
        assert_eq!(
            placement.size(),
            self.size as usize,
            "placement covers {} workers, pool has {}",
            placement.size(),
            self.size
        );
        self.placement = placement;
        self
    }

    /// Names the pool (thread names, reports).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// One worker's commit/abort counter pair, padded onto a single cache
/// line. Both cells are written only by the owning worker (the monitor
/// reads them), so co-locating them is free — one line per worker
/// instead of two, halving the lines the monitor's sweep pulls and the
/// lines a worker's stores keep in M state.
#[derive(Debug, Default)]
struct WorkerSlot {
    tasks: AtomicU64,
    aborts: AtomicU64,
}

/// Shared state between workers and the monitor.
struct Shared {
    /// `L_RUBIC`: number of active workers. Workers with
    /// `tid >= level` park.
    ///
    /// `level`, `running` and `budget` are each padded onto their own
    /// cache line: every worker polls `level`/`running` on every task
    /// and RMWs `budget`, so letting any two share a line would
    /// false-share the hottest loads in the pool with the hottest
    /// store (`budget`'s `fetch_sub`).
    level: CachePadded<AtomicU32>,
    running: CachePadded<AtomicBool>,
    /// Pool size `S` (worker count); the fixed upper bound on `level`.
    size: u32,
    /// The shared admission gate. Gated workers park on it with a
    /// predicate wait; the monitor admits `n` workers on a level
    /// increase with a single `signal_n(n)` (one lock + one
    /// `notify_all`) instead of `n` sequential per-semaphore signals.
    gate: Semaphore,
    /// Per-worker commit/abort slots, each padded onto its own cache
    /// line. Single-writer (the owning worker); the monitor only
    /// reads. Relaxed everywhere — the sound equivalent of the paper's
    /// plain thread-local counters.
    slots: Vec<CachePadded<WorkerSlot>>,
    /// Remaining task budget; negative means "exhausted, stop".
    /// `i64::MAX` when unbounded.
    budget: CachePadded<AtomicI64>,
    /// Tasks that panicked instead of completing (see `worker_loop`).
    panics: AtomicU64,
    /// Stall warnings raised by the monitor's livelock watchdog.
    stalls: AtomicU64,
    /// Worker-to-socket assignment (immutable for the pool's lifetime).
    placement: WorkerPlacement,
    /// Fired exactly once when `running` flips to false, so
    /// [`MalleablePool::wait_budget_exhausted`] can block on a condvar
    /// instead of sleep-polling.
    stopped: DrainSignal,
}

impl Shared {
    fn new(cfg: &PoolConfig) -> Self {
        Shared {
            level: CachePadded::new(AtomicU32::new(cfg.initial_level.clamp(1, cfg.size))),
            running: CachePadded::new(AtomicBool::new(true)),
            size: cfg.size,
            gate: Semaphore::new(0),
            slots: (0..cfg.size)
                .map(|_| CachePadded::new(WorkerSlot::default()))
                .collect(),
            budget: CachePadded::new(AtomicI64::new(
                cfg.task_budget
                    .map_or(i64::MAX, |b| i64::try_from(b).unwrap_or(i64::MAX)),
            )),
            panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            placement: cfg.placement.clone(),
            stopped: DrainSignal::default(),
        }
    }

    fn shutdown(&self) {
        self.running.store(false, Ordering::Release);
        // Wake every parked worker in one batch; their gate predicate
        // re-checks `running` and lets them exit.
        self.gate.signal_n(self.size as usize);
        self.stopped.fire();
    }

    fn total_tasks(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.tasks.load(Ordering::Relaxed)) // ordering: monitoring read
            .sum()
    }

    #[cfg(test)]
    fn total_aborts(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.aborts.load(Ordering::Relaxed)) // ordering: monitoring read
            .sum()
    }
}

/// A cloneable, read-only view of a pool's gating state, handed to the
/// workload through [`Workload::attach`].
///
/// Queue-backed workloads use it to prioritise stealing from shards
/// whose owning workers are gated (`tid >= level()`), so a level
/// decrease never strands queued tasks behind a parked worker.
#[derive(Clone)]
pub struct PoolView {
    shared: Arc<Shared>,
}

impl PoolView {
    /// The current parallelism level (workers with `tid >= level` are
    /// gated).
    #[must_use]
    pub fn level(&self) -> u32 {
        // ordering: the level is advisory for steal prioritisation; a
        // stale read only delays the gated-shard preference by one hop.
        self.shared.level.load(Ordering::Relaxed)
    }

    /// The pool size `S` (total worker count).
    #[must_use]
    pub fn size(&self) -> u32 {
        self.shared.size
    }

    /// True while the pool accepts work.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::Acquire)
    }

    /// The socket worker `tid` is assigned to.
    #[must_use]
    pub fn socket_of(&self, tid: usize) -> u32 {
        self.shared.placement.socket_of(tid)
    }

    /// Sockets in the pool's worker placement (1 = flat).
    #[must_use]
    pub fn sockets(&self) -> u32 {
        self.shared.placement.sockets()
    }

    /// True when workers `a` and `b` share a socket.
    #[must_use]
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.shared.placement.same_socket(a, b)
    }
}

impl std::fmt::Debug for PoolView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolView")
            .field("level", &self.level())
            .field("size", &self.size())
            .finish()
    }
}

/// A running malleable pool: `size` workers plus one monitoring thread.
///
/// Dropping the pool stops and joins everything; prefer
/// [`stop`](MalleablePool::stop) to also receive the [`RunReport`].
pub struct MalleablePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<LevelTrace>>,
    started: Instant,
    name: String,
    /// Type-erased accessor for the workload's steal-locality counters
    /// (the pool is not generic over `W` and does not retain the
    /// workload; this closure holds the only handle `stop` needs).
    steal_stats: Box<dyn Fn() -> Option<(u64, u64)> + Send + Sync>,
}

impl MalleablePool {
    /// Spawns the workers and the monitoring thread and starts running
    /// `workload` under `controller`.
    ///
    /// # Panics
    /// Panics if worker threads cannot be spawned.
    #[must_use]
    pub fn start<W: Workload>(
        cfg: PoolConfig,
        workload: W,
        controller: Box<dyn Controller>,
    ) -> Self {
        let shared = Arc::new(Shared::new(&cfg));
        let workload = Arc::new(workload);
        workload.attach(PoolView {
            shared: Arc::clone(&shared),
        });

        let workers: Vec<JoinHandle<()>> = (0..cfg.size as usize)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let workload = Arc::clone(&workload);
                rubic_sync::thread::Builder::new()
                    .name(format!("{}-w{}", cfg.name, tid))
                    .spawn(move || worker_loop(tid, &shared, &*workload))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        let monitor = {
            let shared = Arc::clone(&shared);
            let period = cfg.period;
            let stall_rounds = cfg.stall_rounds.max(1);
            rubic_sync::thread::Builder::new()
                .name(format!("{}-monitor", cfg.name))
                .spawn(move || monitor_loop(&shared, period, stall_rounds, controller))
                .expect("failed to spawn monitor thread")
        };

        let stats_src = Arc::clone(&workload);
        MalleablePool {
            shared,
            workers,
            monitor: Some(monitor),
            started: Instant::now(),
            name: cfg.name,
            steal_stats: Box::new(move || stats_src.steal_locality()),
        }
    }

    /// The current parallelism level.
    #[must_use]
    pub fn level(&self) -> u32 {
        self.shared.level.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Tasks completed so far across all workers.
    #[must_use]
    pub fn total_tasks(&self) -> u64 {
        self.shared.total_tasks()
    }

    /// True while the pool accepts work (false once stopped or the task
    /// budget ran out).
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::Acquire)
    }

    /// Blocks until the task budget is exhausted (or `stop` is called
    /// from another thread). Returns immediately for unbounded pools
    /// that were already stopped. Event-driven: the waiter parks on a
    /// condvar that `shutdown` fires, rather than sleep-polling.
    pub fn wait_budget_exhausted(&self) {
        self.shared.stopped.wait();
    }

    /// Stops the pool, joins all threads, and reports the run.
    #[must_use]
    pub fn stop(mut self) -> RunReport {
        // Capture the duration at the moment shutdown is *initiated*:
        // joining can take up to a park-timeout per worker, and counting
        // that drain into `elapsed` deflates every throughput number
        // derived from the report (the shorter the run, the worse).
        let elapsed = self.started.elapsed();
        self.shared.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let trace = self
            .monitor
            .take()
            .map(|m| m.join().unwrap_or_default())
            .unwrap_or_default();
        let per_worker: Vec<u64> = self
            .shared
            .slots
            .iter()
            .map(|s| s.tasks.load(Ordering::Relaxed)) // ordering: workers joined
            .collect();
        let per_worker_aborts: Vec<u64> = self
            .shared
            .slots
            .iter()
            .map(|s| s.aborts.load(Ordering::Relaxed)) // ordering: workers joined
            .collect();
        let (steals_local, steals_remote) = (self.steal_stats)().unwrap_or((0, 0));
        RunReport {
            name: std::mem::take(&mut self.name),
            total_tasks: per_worker.iter().sum(),
            total_aborts: per_worker_aborts.iter().sum(),
            per_worker,
            per_worker_aborts,
            elapsed,
            worker_panics: self.shared.panics.load(Ordering::Relaxed), // ordering: workers joined
            stall_warnings: self.shared.stalls.load(Ordering::Relaxed), // ordering: monitor joined
            steals_local,
            steals_remote,
            trace,
        }
    }
}

impl Drop for MalleablePool {
    fn drop(&mut self) {
        self.shared.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }
}

/// What a completed pool run produced.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Pool name.
    pub name: String,
    /// Total completed tasks.
    pub total_tasks: u64,
    /// Total transaction aborts reported by the workload's
    /// [`Workload::drain_aborts`] across all workers (0 for workloads
    /// that don't report aborts).
    pub total_aborts: u64,
    /// Tasks per worker (index = tid). Gated workers show the effect of
    /// the level trace directly: high tids complete few or no tasks.
    pub per_worker: Vec<u64>,
    /// Aborts per worker (index = tid), symmetric with `per_worker`.
    pub per_worker_aborts: Vec<u64>,
    /// Wall-clock duration from start to the moment `stop` was called
    /// (thread-join drain time excluded).
    pub elapsed: Duration,
    /// Tasks whose `run_task` panicked. The panics are caught, the
    /// worker survives with freshly initialised state, and the count
    /// surfaces here so a harness can fail loudly on any non-zero value.
    pub worker_panics: u64,
    /// Times the livelock watchdog fired (no completed task for
    /// `stall_rounds` consecutive monitor rounds).
    pub stall_warnings: u64,
    /// Steals whose thief and victim shared a socket (0 unless the
    /// workload reports locality via [`Workload::steal_locality`]).
    pub steals_local: u64,
    /// Steals that crossed sockets — the placement-pathology signal.
    pub steals_remote: u64,
    /// `(round, level, throughput)` trace recorded by the monitor.
    pub trace: LevelTrace,
}

impl RunReport {
    /// Mean task throughput over the whole run (tasks per second).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_tasks as f64 / secs
        }
    }

    /// Fraction of transaction attempts that aborted:
    /// `aborts / (tasks + aborts)`. `0.0` when the workload reports no
    /// aborts (either none happened or it doesn't implement
    /// [`Workload::drain_aborts`]).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.total_tasks + self.total_aborts;
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts as f64 / attempts as f64
        }
    }
}

/// Algorithm 1: gate on `tid >= L_RUBIC`, then run one task and bump the
/// thread-local counter.
fn worker_loop<W: Workload>(tid: usize, shared: &Shared, workload: &W) {
    let mut state = workload.init_worker(tid);
    let tid_u32 = tid as u32;
    // Fallback timeout: the gate's predicate wait re-checks level and
    // running under the semaphore lock, so wakeups cannot be lost; the
    // timeout is a pure belt-and-braces bound on any missed transition.
    let park_timeout = Duration::from_millis(50);
    let mut parked = false;

    while shared.running.load(Ordering::Acquire) {
        // The gate (Algorithm 1, AcquireTask): a single relaxed load on
        // the hot path; the semaphore wait only happens when gated.
        // ordering: the level is a pure admission threshold — no data is
        // published with it, and the predicate re-check inside
        // `wait_while` runs under the gate's lock, which orders the
        // monitor's store. A stale read here costs one extra loop.
        if tid_u32 >= shared.level.load(Ordering::Relaxed) {
            // Hand locally buffered tasks back to steal-visible storage
            // *before* parking — a level decrease must never strand
            // tasks on a sleeping worker.
            workload.on_park(&mut state);
            if !parked {
                parked = true;
                // ordering: trace payload only
                crate::trc::worker_park(tid, shared.level.load(Ordering::Relaxed), true);
            }
            let _ = shared.gate.wait_while(park_timeout, || {
                // ordering: evaluated under the gate's lock (see above)
                tid_u32 >= shared.level.load(Ordering::Relaxed)
                    && shared.running.load(Ordering::Acquire)
            });
            continue; // re-check gate and running flag
        }
        if parked {
            parked = false;
            // ordering: trace payload only
            crate::trc::worker_park(tid, shared.level.load(Ordering::Relaxed), false);
        }

        // Task budget (finite-queue mode).
        if shared.budget.fetch_sub(1, Ordering::AcqRel) <= 0 {
            shared.shutdown();
            break;
        }

        // A panicking task must not take the whole pool down (the pool
        // is a shared runtime; one bad task is the workload's bug, not
        // grounds to deadlock `stop()` on a dead worker). Catch it,
        // count it, and rebuild the scratch state — the panic may have
        // left it half-updated.
        let completed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            workload.run_task(&mut state);
        }))
        .is_ok();
        if !completed {
            shared.panics.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
            state = workload.init_worker(tid);
            continue; // the task did not complete; don't count it
        }

        // Single-writer counter: plain add, relaxed. Only the monitor
        // reads it. Both cells live on this worker's own padded slot.
        // ordering: single-writer slot, monitor reads are tolerant of
        // staleness — the sound equivalent of the paper's plain
        // thread-local counters.
        let slot = &shared.slots[tid];
        slot.tasks
            .store(slot.tasks.load(Ordering::Relaxed) + 1, Ordering::Relaxed);

        // Abort accounting, same single-writer discipline: the workload
        // drains its thread-local abort count (0 for non-TM workloads —
        // the default impl short-circuits and the store is skipped).
        let aborted = workload.drain_aborts(&mut state);
        if aborted > 0 {
            // ordering: same single-writer discipline as `tasks`.
            slot.aborts.store(
                slot.aborts.load(Ordering::Relaxed) + aborted,
                Ordering::Relaxed,
            );
        }
    }
    // Exit path (shutdown or budget exhaustion): return any buffered
    // tasks so a queue's accounting sees them as unprocessed, not lost.
    workload.on_park(&mut state);
}

/// The monitoring thread: measure throughput each round, consult the
/// controller, apply the level, signal newly enabled workers.
fn monitor_loop(
    shared: &Shared,
    period: Duration,
    stall_rounds: u32,
    mut controller: Box<dyn Controller>,
) -> LevelTrace {
    let mut trace = LevelTrace::new();
    let mut sweep = CounterSweep::new(shared.slots.len());
    let mut prev_instant = Instant::now();
    let mut round = 0u64;
    let mut zero_progress_rounds = 0u32;
    // Level-oscillation watchdog state: the direction of the previous
    // level change and the count of consecutive direction reversals.
    let mut last_dir: i8 = 0;
    let mut level_flips: u32 = 0;
    /// Consecutive up/down reversals before the oscillation anomaly
    /// fires: a healthy controller reverses once when it overshoots and
    /// settles; four straight reversals is sustained thrash.
    const OSCILLATION_FLIPS: u32 = 4;

    while shared.running.load(Ordering::Acquire) {
        rubic_sync::thread::sleep(period);
        let now = Instant::now();
        let elapsed = now.duration_since(prev_instant).as_secs_f64();
        prev_instant = now;

        // One relaxed pass over the padded per-worker slots yields the
        // round's totals *and* the per-worker deltas — the monitor
        // touches each worker's cache line exactly once per round.
        let (delta, abort_delta) = sweep.take(shared);
        let t_c = if elapsed > 0.0 {
            delta as f64 / elapsed
        } else {
            0.0
        };

        // ordering: the monitor is the only writer of `level`; its own
        // read-back needs no synchronisation.
        let level = shared.level.load(Ordering::Relaxed);

        crate::trc::monitor_round(round, delta, level, abort_delta, t_c);
        if crate::trc::active() {
            for (tid, &(w_delta, a_delta)) in sweep.last_deltas.iter().enumerate() {
                if w_delta > 0 || a_delta > 0 {
                    crate::trc::worker_delta(tid, w_delta, round, a_delta);
                }
            }
        }

        // Livelock watchdog: active workers that complete nothing round
        // after round are stuck — classically an abort storm where every
        // transaction keeps conflicting and none commits. There is no
        // safe automatic remedy (lowering the level further masks the
        // bug), so diagnose loudly and keep counting.
        if delta == 0 && shared.running.load(Ordering::Acquire) {
            zero_progress_rounds += 1;
            if zero_progress_rounds >= stall_rounds {
                shared.stalls.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
                eprintln!(
                    "[{}] watchdog: no task completed for {} monitor rounds \
                     (round {}, level {}) — possible abort storm or livelock",
                    // The thread name is diagnostics only, not a sync edge.
                    std::thread::current().name().unwrap_or("rubic-monitor"), // lint: allow-std-sync
                    zero_progress_rounds,
                    round,
                    level,
                );
                // Abort storm: freeze the flight recorder while the
                // evidence (the storm's abort events) is still in it.
                crate::trc::anomaly(
                    crate::trc::ANOMALY_ABORT_STORM,
                    u64::from(zero_progress_rounds),
                    u64::from(stall_rounds),
                    round,
                );
                zero_progress_rounds = 0;
            }
        } else {
            zero_progress_rounds = 0;
        }

        let new_level = controller
            .decide(Sample {
                throughput: t_c,
                level,
                round,
            })
            .clamp(1, shared.size);

        trace.push_with_aborts(round, level, t_c, abort_delta);
        round += 1;

        if new_level != level {
            crate::trc::level_change(level, new_level, round);
            // Oscillation: every change whose direction reverses the
            // previous one bumps the flip streak; a same-direction move
            // (a deliberate multi-step ramp) resets it.
            let dir: i8 = if new_level > level { 1 } else { -1 };
            if dir == -last_dir {
                level_flips += 1;
                if level_flips >= OSCILLATION_FLIPS {
                    crate::trc::anomaly(
                        crate::trc::ANOMALY_LEVEL_OSCILLATION,
                        u64::from(level_flips),
                        u64::from(OSCILLATION_FLIPS),
                        round,
                    );
                    level_flips = 0;
                }
            } else {
                level_flips = 0;
            }
            last_dir = dir;
            // ordering: Relaxed is sound because the level never travels
            // with data: ungating workers observe it through the gate's
            // semaphore lock (signal_n below), and the worker hot path
            // tolerates staleness (re-checked under the same lock).
            shared.level.store(new_level, Ordering::Relaxed);
            // Wake the newly enabled workers (Algorithm 2 lines 20-22)
            // in one batch: a single lock acquisition plus one
            // `notify_all` on the shared gate, instead of one
            // lock+notify per admitted worker. The level store above is
            // published to parked workers by the gate's own lock.
            if new_level > level {
                shared.gate.signal_n((new_level - level) as usize);
            }
            // Workers above the new level park themselves at their next
            // gate check; no action needed here.
        }
    }

    // The shutdown flag flips mid-sleep, so the loop exits with a
    // partial interval unrecorded. Short runs (a handful of periods)
    // lose a measurable share of their trace without it — fold the tail
    // in as a final sample instead of discarding the work it measured.
    let elapsed = prev_instant.elapsed().as_secs_f64();
    let (delta, abort_delta) = sweep.take(shared);
    if elapsed > 0.0 && delta > 0 {
        let t_c = delta as f64 / elapsed;
        let level = shared.level.load(Ordering::Relaxed); // ordering: own store, see above
        crate::trc::monitor_round(round, delta, level, abort_delta, t_c);
        trace.push_with_aborts(round, level, t_c, abort_delta);
    }
    trace
}

/// Reusable scratch for the monitor's once-per-round counter sweep:
/// previous per-worker readings plus the deltas of the last call.
struct CounterSweep {
    prev: Vec<(u64, u64)>,
    /// `(task_delta, abort_delta)` per worker from the latest `take`.
    last_deltas: Vec<(u64, u64)>,
}

impl CounterSweep {
    fn new(workers: usize) -> Self {
        CounterSweep {
            prev: vec![(0, 0); workers],
            last_deltas: vec![(0, 0); workers],
        }
    }

    /// Reads every worker slot once (relaxed) and returns the summed
    /// `(task_delta, abort_delta)` since the previous call. Per-worker
    /// deltas are left in `last_deltas`.
    ///
    /// Deltas are conserved: over any sequence of calls, the per-worker
    /// deltas sum to exactly the slot's final reading, regardless of
    /// concurrent level changes (each slot is single-writer and
    /// monotone, so `current - prev` can never lose or double-count).
    fn take(&mut self, shared: &Shared) -> (u64, u64) {
        let mut tasks = 0u64;
        let mut aborts = 0u64;
        for (tid, slot) in shared.slots.iter().enumerate() {
            // ordering: single-writer monotone counters; a stale read
            // shifts a task into the next round's delta, never loses it.
            let t = slot.tasks.load(Ordering::Relaxed);
            let a = slot.aborts.load(Ordering::Relaxed);
            let (pt, pa) = self.prev[tid];
            let (dt, da) = (t - pt, a - pa);
            self.prev[tid] = (t, a);
            self.last_deltas[tid] = (dt, da);
            tasks += dt;
            aborts += da;
        }
        (tasks, aborts)
    }
}

impl<W: Workload> Workload for Arc<W> {
    type WorkerState = W::WorkerState;

    fn init_worker(&self, tid: usize) -> W::WorkerState {
        W::init_worker(self, tid)
    }

    fn run_task(&self, state: &mut W::WorkerState) {
        W::run_task(self, state);
    }

    fn attach(&self, view: PoolView) {
        W::attach(self, view);
    }

    fn on_park(&self, state: &mut W::WorkerState) {
        W::on_park(self, state);
    }

    fn drain_aborts(&self, state: &mut W::WorkerState) -> u64 {
        W::drain_aborts(self, state)
    }

    fn steal_locality(&self) -> Option<(u64, u64)> {
        W::steal_locality(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubic_controllers::{Ebs, Fixed};

    /// Workload that spins briefly; tasks complete fast enough for
    /// milliseconds-scale tests.
    struct Spin;
    impl Workload for Spin {
        type WorkerState = ();
        fn init_worker(&self, _tid: usize) {}
        fn run_task(&self, _state: &mut ()) {
            std::hint::black_box((0..100u64).fold(0, |a, b| a ^ b));
        }
    }

    fn fixed_pool(size: u32, level: u32) -> MalleablePool {
        MalleablePool::start(
            PoolConfig::new(size)
                .initial_level(level)
                .monitor_period(Duration::from_millis(2))
                .name("test"),
            Spin,
            Box::new(Fixed::new(level, size)),
        )
    }

    #[test]
    fn runs_and_stops() {
        let pool = fixed_pool(4, 2);
        std::thread::sleep(Duration::from_millis(30));
        let report = pool.stop();
        assert!(report.total_tasks > 0, "no tasks ran");
        assert_eq!(report.per_worker.len(), 4);
        assert!(!report.trace.is_empty(), "monitor recorded nothing");
    }

    #[test]
    fn gated_workers_do_no_work() {
        let pool = fixed_pool(4, 1);
        std::thread::sleep(Duration::from_millis(40));
        let report = pool.stop();
        // Only worker 0 is active. Workers 2..4 must be idle; worker 1
        // may run a handful of tasks before the first gate check.
        assert!(report.per_worker[0] > 0);
        assert_eq!(report.per_worker[2], 0, "{:?}", report.per_worker);
        assert_eq!(report.per_worker[3], 0, "{:?}", report.per_worker);
    }

    #[test]
    fn level_changes_wake_workers() {
        // Start at level 1 with a controller that climbs (EBS on a
        // plateau climbs +1 per round); higher-tid workers must
        // eventually run tasks.
        let pool = MalleablePool::start(
            PoolConfig::new(3)
                .initial_level(1)
                .monitor_period(Duration::from_millis(2)),
            Spin,
            Box::new(Ebs::new(3)),
        );
        // Deadline-based: under CPU contention (e.g. concurrent bench
        // runs) a fixed sleep is flaky.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if pool.level() == 3 && pool.total_tasks() > 0 {
                // Give the newly enabled workers a beat to run.
                std::thread::sleep(Duration::from_millis(50));
                break;
            }
            assert!(Instant::now() < deadline, "level never reached 3");
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = pool.stop();
        assert!(
            report.per_worker.iter().all(|&t| t > 0),
            "all workers should have been enabled: {:?}",
            report.per_worker
        );
    }

    #[test]
    fn task_budget_stops_pool() {
        let pool = MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .task_budget(100)
                .monitor_period(Duration::from_millis(2)),
            Spin,
            Box::new(Fixed::new(2, 2)),
        );
        pool.wait_budget_exhausted();
        let report = pool.stop();
        // fetch_sub semantics: exactly `budget` tasks run.
        assert_eq!(report.total_tasks, 100);
    }

    #[test]
    fn trace_levels_respect_bounds() {
        let pool = MalleablePool::start(
            PoolConfig::new(4).monitor_period(Duration::from_millis(1)),
            Spin,
            Box::new(Ebs::new(4)),
        );
        std::thread::sleep(Duration::from_millis(40));
        let report = pool.stop();
        for p in report.trace.points() {
            assert!((1..=4).contains(&p.level));
        }
        // Rounds are recorded monotonically.
        let rounds: Vec<u64> = report.trace.points().iter().map(|p| p.round).collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn throughput_is_positive() {
        let pool = fixed_pool(2, 2);
        std::thread::sleep(Duration::from_millis(30));
        let report = pool.stop();
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn drop_without_stop_joins_cleanly() {
        let pool = fixed_pool(2, 1);
        std::thread::sleep(Duration::from_millis(10));
        drop(pool); // must not hang or panic
    }

    #[test]
    fn abort_accounting_flows_to_report_and_trace() {
        // Every third task "aborts once first": drain_aborts reports a
        // synthetic retry so the counters exercise the same path a real
        // STM workload uses via take_thread_aborts().
        struct Flaky;
        impl Workload for Flaky {
            type WorkerState = u64; // tasks run by this worker
            fn init_worker(&self, _tid: usize) -> u64 {
                0
            }
            fn run_task(&self, state: &mut u64) {
                *state += 1;
                std::hint::black_box((0..100u64).fold(0, |a, b| a ^ b));
            }
            fn drain_aborts(&self, state: &mut u64) -> u64 {
                // `is_multiple_of` postdates the 1.75 MSRV.
                #[allow(clippy::manual_is_multiple_of)]
                u64::from(*state % 3 == 0)
            }
        }
        let pool = MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .monitor_period(Duration::from_millis(2))
                .task_budget(300),
            Flaky,
            Box::new(Fixed::new(2, 2)),
        );
        pool.wait_budget_exhausted();
        let report = pool.stop();
        assert!(report.total_aborts > 0, "synthetic aborts not drained");
        assert_eq!(
            report.per_worker_aborts.iter().sum::<u64>(),
            report.total_aborts
        );
        // The monitor's last sample may miss a straggler abort store
        // (worker bumps its task counter before its abort counter), so
        // the trace can undercount the report — never overcount.
        assert!(report.trace.total_aborts() <= report.total_aborts);
        let rate = report.abort_rate();
        assert!(rate > 0.0 && rate < 1.0, "abort_rate = {rate}");
    }

    #[test]
    fn abort_rate_zero_when_unreported() {
        let pool = fixed_pool(2, 2);
        std::thread::sleep(Duration::from_millis(20));
        let report = pool.stop();
        assert_eq!(report.total_aborts, 0);
        assert_eq!(report.abort_rate(), 0.0);
    }

    #[test]
    fn counter_sweep_conserves_deltas_across_level_changes() {
        // Workers bump their slots concurrently while the "monitor"
        // sweeps at arbitrary moments and the level flips between
        // sweeps; the per-worker deltas must sum to exactly the final
        // counter values — nothing lost, nothing double-counted.
        let cfg = PoolConfig::new(4);
        let shared = Arc::new(Shared::new(&cfg));
        let writers: Vec<_> = (0..4usize)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let slot = &shared.slots[tid];
                        slot.tasks
                            .store(slot.tasks.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
                        if i % 3 == 0 {
                            slot.aborts
                                .store(slot.aborts.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();

        let mut sweep = CounterSweep::new(4);
        let mut seen_tasks = 0u64;
        let mut seen_aborts = 0u64;
        for i in 0..50 {
            // Flip the level between sweeps: the sweep must not care.
            shared.level.store(1 + (i % 4), Ordering::Relaxed);
            let (dt, da) = sweep.take(&shared);
            seen_tasks += dt;
            seen_aborts += da;
        }
        for w in writers {
            w.join().unwrap();
        }
        let (dt, da) = sweep.take(&shared);
        seen_tasks += dt;
        seen_aborts += da;
        assert_eq!(seen_tasks, shared.total_tasks());
        assert_eq!(seen_aborts, shared.total_aborts());
        assert_eq!(seen_tasks, 40_000);
        // Per-worker deltas in the final sweep also conserve: each
        // worker's prev reading equals its final counter now.
        for (tid, slot) in shared.slots.iter().enumerate() {
            assert_eq!(sweep.prev[tid].0, slot.tasks.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn pool_view_reports_level_and_size() {
        struct Capture(Mutex<Option<PoolView>>);
        struct W(Arc<Capture>);
        impl Workload for W {
            type WorkerState = ();
            fn init_worker(&self, _tid: usize) {}
            fn run_task(&self, (): &mut ()) {
                std::thread::sleep(Duration::from_micros(50));
            }
            fn attach(&self, view: PoolView) {
                *self.0 .0.lock().unwrap() = Some(view);
            }
        }
        use std::sync::Mutex;
        let cap = Arc::new(Capture(Mutex::new(None)));
        let pool = MalleablePool::start(
            PoolConfig::new(3)
                .initial_level(2)
                .monitor_period(Duration::from_millis(5)),
            W(Arc::clone(&cap)),
            Box::new(Fixed::new(2, 3)),
        );
        let view = cap.0.lock().unwrap().clone().expect("attach not called");
        assert_eq!(view.size(), 3);
        assert_eq!(view.level(), 2);
        assert!(view.is_running());
        let _ = pool.stop();
        assert!(!view.is_running());
    }

    #[test]
    fn per_worker_state_is_initialised_per_tid() {
        use std::sync::Mutex;
        struct Recorder(Mutex<Vec<usize>>);
        struct W(Arc<Recorder>);
        impl Workload for W {
            type WorkerState = usize;
            fn init_worker(&self, tid: usize) -> usize {
                self.0 .0.lock().unwrap().push(tid);
                tid
            }
            fn run_task(&self, _state: &mut usize) {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let pool = MalleablePool::start(
            PoolConfig::new(3).monitor_period(Duration::from_millis(5)),
            W(Arc::clone(&rec)),
            Box::new(Fixed::new(1, 3)),
        );
        std::thread::sleep(Duration::from_millis(20));
        let _ = pool.stop();
        let mut tids = rec.0.lock().unwrap().clone();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2]);
    }
}
