//! Malleability integration tests: drive the pool's level through a
//! scripted schedule and verify the gating machinery applies it —
//! workers wake when enabled, park when disabled, and counters reflect
//! exactly the scheduled windows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rubic_controllers::{Controller, Sample};
use rubic_runtime::{MalleablePool, PoolConfig, Workload};

/// A controller that replays a fixed level schedule, then holds the
/// last entry.
struct Scripted {
    schedule: Vec<u32>,
    max: u32,
}

impl Controller for Scripted {
    fn decide(&mut self, sample: Sample) -> u32 {
        let idx = (sample.round as usize).min(self.schedule.len() - 1);
        self.schedule[idx].clamp(1, self.max)
    }

    fn reset(&mut self) {}

    fn max_level(&self) -> u32 {
        self.max
    }

    fn name(&self) -> &'static str {
        "Scripted"
    }
}

#[derive(Clone)]
struct CountingSpin(Arc<Vec<AtomicU64>>);

impl Workload for CountingSpin {
    type WorkerState = usize;

    fn init_worker(&self, tid: usize) -> usize {
        tid
    }

    fn run_task(&self, tid: &mut usize) {
        std::hint::black_box((0..100u64).fold(0u64, |a, b| a ^ (b << 1)));
        self.0[*tid].fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn scripted_levels_are_applied_in_order() {
    // 30 rounds of 3ms: 1 -> 3 -> 2.
    let mut schedule = vec![1u32; 10];
    schedule.extend(vec![3u32; 10]);
    schedule.extend(vec![2u32; 10]);
    let pool = MalleablePool::start(
        PoolConfig::new(3).monitor_period(Duration::from_millis(3)),
        CountingSpin(Arc::new((0..3).map(|_| AtomicU64::new(0)).collect())),
        Box::new(Scripted { schedule, max: 3 }),
    );
    // Deadline-based: follow the staircase live instead of sleeping a
    // fixed wall-clock amount (flaky under CPU contention).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    for expected in [3u32, 2u32] {
        while pool.level() != expected {
            assert!(
                std::time::Instant::now() < deadline,
                "level never reached {expected}"
            );
            std::thread::sleep(Duration::from_millis(3));
        }
    }
    let report = pool.stop();
    let levels: Vec<u32> = report.trace.points().iter().map(|p| p.level).collect();
    // The trace must contain the 1 -> 3 -> 2 staircase in order.
    let first3 = levels
        .iter()
        .position(|&l| l == 3)
        .expect("level 3 never recorded");
    assert!(
        levels[first3..].contains(&2),
        "level 2 never recorded after 3: {levels:?}"
    );
    assert!(
        levels[..first3].contains(&1),
        "level 1 missing before 3: {levels:?}"
    );
}

#[test]
fn disabled_worker_stops_progressing() {
    let counters: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect());
    // 2 workers for 15 rounds, then drop to 1 for the rest.
    let mut schedule = vec![2u32; 15];
    schedule.extend(vec![1u32; 100]);
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .initial_level(2)
            .monitor_period(Duration::from_millis(3)),
        CountingSpin(Arc::clone(&counters)),
        Box::new(Scripted { schedule, max: 2 }),
    );
    // Phase 1: wait (with a deadline; fixed sleeps are flaky under CPU
    // contention) until worker 1 has demonstrably run.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while counters[1].load(Ordering::Relaxed) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "worker 1 never ran while enabled"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Phase 2: wait until the schedule's level drop is applied, then
    // demand quiescence: the counter must stop changing.
    while pool.level() != 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "level never dropped to 1"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The worker may finish one in-flight task after the drop; wait for
    // the counter to hold still across a full observation window.
    let mut stable = counters[1].load(Ordering::Relaxed);
    loop {
        std::thread::sleep(Duration::from_millis(60));
        let now = counters[1].load(Ordering::Relaxed);
        if now == stable {
            break;
        }
        stable = now;
        assert!(
            std::time::Instant::now() < deadline,
            "worker 1 kept completing tasks while gated"
        );
    }
    let w0_before = counters[0].load(Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(60));
    let w1_final = counters[1].load(Ordering::Relaxed);
    let _ = pool.stop();
    assert_eq!(
        stable, w1_final,
        "worker 1 kept completing tasks while gated"
    );
    assert!(
        counters[0].load(Ordering::Relaxed) >= w0_before,
        "worker 0 should keep running"
    );
}

#[test]
fn reenabled_worker_resumes() {
    let counters: Arc<Vec<AtomicU64>> = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect());
    // 1 worker, then 2, then 1 again.
    let mut schedule = vec![1u32; 10];
    schedule.extend(vec![2u32; 10]);
    schedule.extend(vec![1u32; 10]);
    schedule.extend(vec![2u32; 100]);
    let pool = MalleablePool::start(
        PoolConfig::new(2).monitor_period(Duration::from_millis(3)),
        CountingSpin(Arc::clone(&counters)),
        Box::new(Scripted { schedule, max: 2 }),
    );
    std::thread::sleep(Duration::from_millis(200));
    let report = pool.stop();
    // Worker 1 ran during both enabled windows: it must have completed
    // work, and the pool saw all three level plateaus.
    assert!(counters[1].load(Ordering::Relaxed) > 0);
    let levels: Vec<u32> = report.trace.points().iter().map(|p| p.level).collect();
    assert!(levels.contains(&1) && levels.contains(&2), "{levels:?}");
}

#[test]
fn throughput_signal_reaches_controller() {
    // A controller that records the throughput samples it sees.
    struct Recorder(Arc<std::sync::Mutex<Vec<f64>>>);
    impl Controller for Recorder {
        fn decide(&mut self, sample: Sample) -> u32 {
            self.0.lock().unwrap().push(sample.throughput);
            2
        }
        fn reset(&mut self) {}
        fn max_level(&self) -> u32 {
            2
        }
        fn name(&self) -> &'static str {
            "Recorder"
        }
    }
    let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .initial_level(2)
            .monitor_period(Duration::from_millis(5)),
        CountingSpin(Arc::new((0..2).map(|_| AtomicU64::new(0)).collect())),
        Box::new(Recorder(Arc::clone(&seen))),
    );
    std::thread::sleep(Duration::from_millis(80));
    let _ = pool.stop();
    let samples = seen.lock().unwrap();
    assert!(
        samples.len() >= 5,
        "too few monitor rounds: {}",
        samples.len()
    );
    assert!(
        samples.iter().skip(1).any(|&t| t > 0.0),
        "controller never saw positive throughput: {samples:?}"
    );
}
