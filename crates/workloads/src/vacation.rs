//! Vacation — a port of the STAMP travel-reservation benchmark
//! (Minh et al., IISWC '08), one of the two STAMP applications in the
//! paper's evaluation (§4.4).
//!
//! The system emulates an online travel agency: four relation tables —
//! **cars**, **flights**, **rooms** (id → availability/price records)
//! and **customers** (id → held reservations) — updated by client
//! sessions. Each task is one client session, a single transaction of
//! one of three kinds (STAMP's action mix):
//!
//! * **Make reservation** (`user_pct`%): query `queries_per_task` random
//!   items, remember the highest-priced available item of each resource
//!   type, then reserve those for a random customer (creating the
//!   customer record on demand).
//! * **Delete customer** (half the remainder): bill a random customer —
//!   sum the prices of their reservations, release each one, and remove
//!   the record.
//! * **Update tables** (other half): `queries_per_task` random
//!   add-or-remove operations on item availability/prices.
//!
//! STAMP's canonical "low contention" parameters (`vacation-low`:
//! `-n2 -q90 -u98`) and "high contention" (`vacation-high`:
//! `-n4 -q60 -u90`) are provided as presets; the paper's Fig. 6 places
//! Vacation in the middle of the scalability spectrum.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rubic_runtime::Workload;
use rubic_stm::{Stm, Transaction, TxResult};

use crate::mapapi::{MapFamily, SnapshotFamily, TOrdMap};

/// One of the three reservable resource types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// Rental cars.
    Car,
    /// Flight seats.
    Flight,
    /// Hotel rooms.
    Room,
}

impl ResourceKind {
    const ALL: [ResourceKind; 3] = [ResourceKind::Car, ResourceKind::Flight, ResourceKind::Room];
}

/// Availability record for one reservable item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Total units (e.g. seats).
    pub total: u32,
    /// Units currently reserved.
    pub used: u32,
    /// Price per unit.
    pub price: u64,
}

impl Resource {
    /// Units still available.
    #[must_use]
    pub fn free(&self) -> u32 {
        self.total - self.used
    }
}

/// A customer's held reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Booking {
    /// Resource type.
    pub kind: ResourceKind,
    /// Item id within that type's table.
    pub id: u64,
    /// Price paid.
    pub price: u64,
}

/// A customer record: the list of reservations they hold.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Customer {
    /// Held reservations.
    pub bookings: Vec<Booking>,
}

/// Benchmark parameters (STAMP flag names in brackets).
#[derive(Debug, Clone, Copy)]
pub struct VacationConfig {
    /// Rows per relation table (`-r`).
    pub relations: u64,
    /// Queries per client session (`-n`).
    pub queries_per_task: u32,
    /// Percentage of the id space sessions may touch (`-q`).
    pub query_range_pct: u32,
    /// Percentage of sessions that are reservations (`-u`); the rest
    /// split evenly between delete-customer and update-tables.
    pub user_pct: u32,
    /// RNG seed for population and worker streams.
    pub seed: u64,
}

impl VacationConfig {
    /// STAMP `vacation-low`: `-n2 -q90 -u98` (scaled-down tables by
    /// default; pass your own `relations` for full size).
    #[must_use]
    pub fn low_contention(relations: u64) -> Self {
        VacationConfig {
            relations,
            queries_per_task: 2,
            query_range_pct: 90,
            user_pct: 98,
            seed: 0x5EED_0003,
        }
    }

    /// STAMP `vacation-high`: `-n4 -q60 -u90`.
    #[must_use]
    pub fn high_contention(relations: u64) -> Self {
        VacationConfig {
            relations,
            queries_per_task: 4,
            query_range_pct: 60,
            user_pct: 90,
            seed: 0x5EED_0004,
        }
    }
}

/// The reservation-system state: STAMP's `manager_t`, generic over the
/// table structure ([`MapFamily`]). All four tables carry trace labels
/// (`vacation.cars` … `vacation.customers`), so with the per-node
/// B-tree backend a hot interior node shows up in contention tables as
/// e.g. `vacation.flights/node@d2`.
pub struct ManagerOn<F: MapFamily> {
    cars: F::Map<u64, Resource>,
    flights: F::Map<u64, Resource>,
    rooms: F::Map<u64, Resource>,
    customers: F::Map<u64, Customer>,
}

/// The historical default: snapshot-cell tables.
pub type Manager = ManagerOn<SnapshotFamily>;

impl<F: MapFamily> ManagerOn<F> {
    /// Creates empty tables.
    #[must_use]
    pub fn new() -> Self {
        ManagerOn {
            cars: F::new_labelled("vacation.cars"),
            flights: F::new_labelled("vacation.flights"),
            rooms: F::new_labelled("vacation.rooms"),
            customers: F::new_labelled("vacation.customers"),
        }
    }

    fn table(&self, kind: ResourceKind) -> &F::Map<u64, Resource> {
        match kind {
            ResourceKind::Car => &self.cars,
            ResourceKind::Flight => &self.flights,
            ResourceKind::Room => &self.rooms,
        }
    }

    /// Adds `units` of item `id` at `price` (creating the row on
    /// demand) — STAMP's `manager_add*`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn add_resource(
        &self,
        tx: &mut Transaction,
        kind: ResourceKind,
        id: u64,
        units: u32,
        price: u64,
    ) -> TxResult<()> {
        let table = self.table(kind);
        let updated = match table.get(tx, &id)? {
            Some(r) => Resource {
                total: r.total + units,
                used: r.used,
                price,
            },
            None => Resource {
                total: units,
                used: 0,
                price,
            },
        };
        table.insert(tx, id, updated)?;
        Ok(())
    }

    /// Retires up to `units` unreserved units of item `id`; removes the
    /// row if it empties — STAMP's `manager_delete*`. Returns whether
    /// anything was retired.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn retire_resource(
        &self,
        tx: &mut Transaction,
        kind: ResourceKind,
        id: u64,
        units: u32,
    ) -> TxResult<bool> {
        let table = self.table(kind);
        let Some(r) = table.get(tx, &id)? else {
            return Ok(false);
        };
        let removable = units.min(r.free());
        if removable == 0 {
            return Ok(false);
        }
        let total = r.total - removable;
        if total == 0 {
            table.remove(tx, &id)?;
        } else {
            table.insert(
                tx,
                id,
                Resource {
                    total,
                    used: r.used,
                    price: r.price,
                },
            )?;
        }
        Ok(true)
    }

    /// Item price, if the row exists.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn query(
        &self,
        tx: &mut Transaction,
        kind: ResourceKind,
        id: u64,
    ) -> TxResult<Option<Resource>> {
        self.table(kind).get(tx, &id)
    }

    /// Reserves one unit of item `id` for `customer`, creating the
    /// customer record on demand. Returns `false` (without changing
    /// anything) when the item is missing or fully booked.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn reserve(
        &self,
        tx: &mut Transaction,
        kind: ResourceKind,
        customer: u64,
        id: u64,
    ) -> TxResult<bool> {
        let table = self.table(kind);
        let Some(r) = table.get(tx, &id)? else {
            return Ok(false);
        };
        if r.free() == 0 {
            return Ok(false);
        }
        table.insert(
            tx,
            id,
            Resource {
                total: r.total,
                used: r.used + 1,
                price: r.price,
            },
        )?;
        let mut record = self.customers.get(tx, &customer)?.unwrap_or_default();
        record.bookings.push(Booking {
            kind,
            id,
            price: r.price,
        });
        self.customers.insert(tx, customer, record)?;
        Ok(true)
    }

    /// Bills and removes `customer`, releasing every reservation they
    /// hold. Returns the bill, or `None` if the customer is unknown.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn delete_customer(&self, tx: &mut Transaction, customer: u64) -> TxResult<Option<u64>> {
        let Some(record) = self.customers.get(tx, &customer)? else {
            return Ok(None);
        };
        let mut bill = 0u64;
        for booking in &record.bookings {
            bill += booking.price;
            let table = self.table(booking.kind);
            if let Some(r) = table.get(tx, &booking.id)? {
                table.insert(
                    tx,
                    booking.id,
                    Resource {
                        total: r.total,
                        used: r.used.saturating_sub(1),
                        price: r.price,
                    },
                )?;
            }
        }
        self.customers.remove(tx, &customer)?;
        Ok(Some(bill))
    }

    /// Sum of reserved units across the three resource tables, read in
    /// one consistent transaction.
    #[must_use]
    pub fn total_reserved_units(&self, stm: &Stm) -> u64 {
        stm.read_only(|tx| {
            let mut sum = 0u64;
            for kind in ResourceKind::ALL {
                for (_, r) in self.table(kind).entries(tx)? {
                    sum += u64::from(r.used);
                }
            }
            Ok(sum)
        })
    }

    /// Sum of bookings held by all customers (inspection).
    #[must_use]
    pub fn total_customer_bookings(&self) -> u64 {
        self.customers
            .snapshot_entries()
            .iter()
            .map(|(_, c)| c.bookings.len() as u64)
            .sum()
    }
}

impl<F: MapFamily> Default for ManagerOn<F> {
    fn default() -> Self {
        ManagerOn::new()
    }
}

/// The Vacation workload: a populated [`Manager`] plus the client-session
/// task generator, generic over the table structure.
pub struct VacationWorkloadOn<F: MapFamily> {
    manager: ManagerOn<F>,
    cfg: VacationConfig,
    stm: Stm,
}

/// The historical default: snapshot-cell tables.
pub type VacationWorkload = VacationWorkloadOn<SnapshotFamily>;

impl<F: MapFamily> VacationWorkloadOn<F> {
    /// Populates the four tables: every relation row gets 100–500 units
    /// at a random price (STAMP's initialisation), customers start
    /// empty.
    #[must_use]
    pub fn new(cfg: VacationConfig, stm: Stm) -> Self {
        let manager = ManagerOn::new();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        for id in 0..cfg.relations {
            for kind in ResourceKind::ALL {
                let units = rng.gen_range(1..=5) * 100;
                let price = rng.gen_range(1..=5) * 10 + 50;
                stm.atomically(|tx| manager.add_resource(tx, kind, id, units, price));
            }
        }
        VacationWorkloadOn { manager, cfg, stm }
    }

    /// The reservation manager (inspection).
    #[must_use]
    pub fn manager(&self) -> &ManagerOn<F> {
        &self.manager
    }

    /// The STM runtime.
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    fn query_range(&self) -> u64 {
        (self.cfg.relations * u64::from(self.cfg.query_range_pct) / 100).max(1)
    }

    fn session_make_reservation(&self, rng: &mut SmallRng) {
        let range = self.query_range();
        let customer = rng.gen_range(0..range);
        // Collect the queries up front (STAMP builds the query arrays
        // before the transaction).
        let queries: Vec<(ResourceKind, u64)> = (0..self.cfg.queries_per_task)
            .map(|_| {
                (
                    ResourceKind::ALL[rng.gen_range(0..3)],
                    rng.gen_range(0..range),
                )
            })
            .collect();
        self.stm.atomically(|tx| {
            // Highest-priced available item per type (STAMP semantics).
            let mut best: [Option<(u64, u64)>; 3] = [None, None, None];
            for &(kind, id) in &queries {
                if let Some(r) = self.manager.query(tx, kind, id)? {
                    if r.free() > 0 {
                        let slot = &mut best[kind as usize];
                        if slot.is_none_or(|(_, price)| r.price > price) {
                            *slot = Some((id, r.price));
                        }
                    }
                }
            }
            for kind in ResourceKind::ALL {
                if let Some((id, _)) = best[kind as usize] {
                    self.manager.reserve(tx, kind, customer, id)?;
                }
            }
            Ok(())
        });
    }

    fn session_delete_customer(&self, rng: &mut SmallRng) {
        let customer = rng.gen_range(0..self.query_range());
        self.stm
            .atomically(|tx| self.manager.delete_customer(tx, customer));
    }

    fn session_update_tables(&self, rng: &mut SmallRng) {
        let ops: Vec<(ResourceKind, u64, bool, u64)> = (0..self.cfg.queries_per_task)
            .map(|_| {
                (
                    ResourceKind::ALL[rng.gen_range(0..3)],
                    rng.gen_range(0..self.cfg.relations),
                    rng.gen_bool(0.5),
                    rng.gen_range(1..=5) * 10 + 50,
                )
            })
            .collect();
        self.stm.atomically(|tx| {
            for &(kind, id, add, price) in &ops {
                if add {
                    self.manager.add_resource(tx, kind, id, 100, price)?;
                } else {
                    self.manager.retire_resource(tx, kind, id, 100)?;
                }
            }
            Ok(())
        });
    }
}

/// Per-worker state for Vacation.
pub struct VacationWorkerState {
    rng: SmallRng,
}

impl<F: MapFamily> Workload for VacationWorkloadOn<F> {
    type WorkerState = VacationWorkerState;

    fn init_worker(&self, tid: usize) -> VacationWorkerState {
        VacationWorkerState {
            rng: SmallRng::seed_from_u64(
                self.cfg.seed ^ (tid as u64).wrapping_mul(0xD134_2543_DE82_EF95),
            ),
        }
    }

    fn run_task(&self, state: &mut VacationWorkerState) {
        let dice = state.rng.gen_range(0..100);
        if dice < self.cfg.user_pct {
            self.session_make_reservation(&mut state.rng);
        } else if dice < self.cfg.user_pct + (100 - self.cfg.user_pct) / 2 {
            self.session_delete_customer(&mut state.rng);
        } else {
            self.session_update_tables(&mut state.rng);
        }
    }

    fn drain_aborts(&self, _state: &mut VacationWorkerState) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VacationConfig {
        VacationConfig {
            relations: 64,
            ..VacationConfig::low_contention(64)
        }
    }

    #[test]
    fn population_fills_tables() {
        let w = VacationWorkload::new(small(), Stm::default());
        for kind in ResourceKind::ALL {
            assert_eq!(w.manager().table(kind).snapshot_entries().len(), 64);
        }
        assert_eq!(w.manager().customers.snapshot_entries().len(), 0);
    }

    #[test]
    fn btree_tables_run_the_same_sessions() {
        use crate::mapapi::BTreeFamily;
        let w = VacationWorkloadOn::<BTreeFamily>::new(small(), Stm::default());
        let mut state = w.init_worker(0);
        for _ in 0..500 {
            w.run_task(&mut state);
        }
        let used = w.manager().total_reserved_units(w.stm());
        let held = w.manager().total_customer_bookings();
        assert_eq!(used, held, "reservation ledger out of balance");
        for kind in ResourceKind::ALL {
            w.manager()
                .table(kind)
                .check_invariants()
                .expect("btree table invariants");
        }
    }

    #[test]
    fn reserve_and_delete_customer_roundtrip() {
        let stm = Stm::default();
        let m = Manager::new();
        stm.atomically(|tx| m.add_resource(tx, ResourceKind::Car, 1, 10, 99));
        let ok = stm.atomically(|tx| m.reserve(tx, ResourceKind::Car, 7, 1));
        assert!(ok);
        let r = stm
            .atomically(|tx| m.query(tx, ResourceKind::Car, 1))
            .unwrap();
        assert_eq!(r.used, 1);
        let bill = stm.atomically(|tx| m.delete_customer(tx, 7));
        assert_eq!(bill, Some(99));
        let r = stm
            .atomically(|tx| m.query(tx, ResourceKind::Car, 1))
            .unwrap();
        assert_eq!(r.used, 0, "deleting the customer releases the unit");
    }

    #[test]
    fn reserve_fails_when_full() {
        let stm = Stm::default();
        let m = Manager::new();
        stm.atomically(|tx| m.add_resource(tx, ResourceKind::Room, 2, 1, 50));
        assert!(stm.atomically(|tx| m.reserve(tx, ResourceKind::Room, 1, 2)));
        assert!(!stm.atomically(|tx| m.reserve(tx, ResourceKind::Room, 2, 2)));
    }

    #[test]
    fn reserve_missing_item_fails() {
        let stm = Stm::default();
        let m = Manager::new();
        assert!(!stm.atomically(|tx| m.reserve(tx, ResourceKind::Flight, 1, 42)));
    }

    #[test]
    fn retire_respects_reservations() {
        let stm = Stm::default();
        let m = Manager::new();
        stm.atomically(|tx| m.add_resource(tx, ResourceKind::Car, 1, 100, 10));
        assert!(stm.atomically(|tx| m.reserve(tx, ResourceKind::Car, 1, 1)));
        // 99 free; retiring 100 only retires 99.
        assert!(stm.atomically(|tx| m.retire_resource(tx, ResourceKind::Car, 1, 100)));
        let r = stm
            .atomically(|tx| m.query(tx, ResourceKind::Car, 1))
            .unwrap();
        assert_eq!(r.total, 1);
        assert_eq!(r.used, 1);
        assert_eq!(r.free(), 0);
        // Nothing free: retiring again is a no-op.
        assert!(!stm.atomically(|tx| m.retire_resource(tx, ResourceKind::Car, 1, 1)));
    }

    #[test]
    fn retire_to_zero_removes_row() {
        let stm = Stm::default();
        let m = Manager::new();
        stm.atomically(|tx| m.add_resource(tx, ResourceKind::Room, 3, 100, 10));
        assert!(stm.atomically(|tx| m.retire_resource(tx, ResourceKind::Room, 3, 100)));
        assert_eq!(
            stm.atomically(|tx| m.query(tx, ResourceKind::Room, 3)),
            None
        );
    }

    #[test]
    fn delete_unknown_customer_is_none() {
        let stm = Stm::default();
        let m = Manager::new();
        assert_eq!(stm.atomically(|tx| m.delete_customer(tx, 12345)), None);
    }

    #[test]
    fn bookkeeping_invariant_used_equals_bookings() {
        // After any mix of sessions, units marked used in the tables
        // must equal bookings held by customers.
        let stm = Stm::default();
        let w = VacationWorkload::new(small(), stm);
        let mut state = w.init_worker(0);
        for _ in 0..500 {
            w.run_task(&mut state);
        }
        let used = w.manager().total_reserved_units(w.stm());
        let held = w.manager().total_customer_bookings();
        assert_eq!(used, held, "reservation ledger out of balance");
    }

    #[test]
    fn sessions_commit() {
        let w = VacationWorkload::new(small(), Stm::default());
        let before = w.stm().stats().commits();
        let mut state = w.init_worker(1);
        for _ in 0..50 {
            w.run_task(&mut state);
        }
        assert!(w.stm().stats().commits() >= before + 50);
    }

    #[test]
    fn presets_match_stamp_flags() {
        let low = VacationConfig::low_contention(1000);
        assert_eq!(
            (low.queries_per_task, low.query_range_pct, low.user_pct),
            (2, 90, 98)
        );
        let high = VacationConfig::high_contention(1000);
        assert_eq!(
            (high.queries_per_task, high.query_range_pct, high.user_pct),
            (4, 60, 90)
        );
    }
}
