//! The ordered-map microbenchmark (paper §4.4).
//!
//! The paper's micro-workload: a shared search tree of **64 K
//! elements** with **98 % look-up operations** (1 % insert, 1 % delete),
//! representing the highly scalable end of the spectrum; plus the
//! **conflict-free variant (100 % read-only)** used for the convergence
//! experiment of §4.6 / Fig. 10, which "scales up to the number of h/w
//! contexts".
//!
//! Each task is one transaction: a look-up, insert, or delete of a key
//! drawn uniformly from twice the initial element range (so inserts and
//! deletes hit present/absent keys roughly evenly and the tree size
//! stays stationary around its initial value).
//!
//! The workload is generic over the map backend
//! ([`crate::mapapi::MapFamily`]): [`RbTreeWorkload`] is the historical
//! snapshot-cell red-black tree ([`crate::tmap::TMap`], every update
//! conflicts with every update), while
//! `RbTreeWorkloadOn<BTreeFamily>` runs the same mix on the per-node
//! [`crate::btree::TBTreeMap`] — the stmbench `structure` axis.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rubic_runtime::Workload;
use rubic_stm::Stm;

use crate::mapapi::{MapFamily, SnapshotFamily, TOrdMap};

/// Operation mix for [`RbTreeWorkload`], in parts per thousand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Look-ups (‰).
    pub lookup: u32,
    /// Inserts (‰).
    pub insert: u32,
    /// Deletes (‰).
    pub delete: u32,
}

impl OpMix {
    /// The paper's micro-benchmark mix: 98 % look-ups, updates split
    /// evenly.
    #[must_use]
    pub fn paper() -> Self {
        OpMix {
            lookup: 980,
            insert: 10,
            delete: 10,
        }
    }

    /// 100 % look-ups — the conflict-free workload of §4.6.
    #[must_use]
    pub fn read_only() -> Self {
        OpMix {
            lookup: 1000,
            insert: 0,
            delete: 0,
        }
    }

    /// A write-heavy mix for contention studies (50/25/25).
    #[must_use]
    pub fn write_heavy() -> Self {
        OpMix {
            lookup: 500,
            insert: 250,
            delete: 250,
        }
    }

    fn total(&self) -> u32 {
        self.lookup + self.insert + self.delete
    }
}

/// Configuration for the ordered-map micro-benchmark.
#[derive(Debug, Clone)]
pub struct RbTreeConfig {
    /// Initial number of elements (paper: 65 536).
    pub initial_size: u64,
    /// Keys are drawn from `[0, key_range)`; defaults to twice the
    /// initial size so the tree size is stationary under the mix.
    pub key_range: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// RNG seed for the initial fill and per-worker streams.
    pub seed: u64,
}

impl RbTreeConfig {
    /// The paper's configuration: 64 K elements, 98 % look-ups.
    #[must_use]
    pub fn paper() -> Self {
        RbTreeConfig {
            initial_size: 65_536,
            key_range: 131_072,
            mix: OpMix::paper(),
            seed: 0x5EED_0001,
        }
    }

    /// A small configuration for fast tests.
    #[must_use]
    pub fn small() -> Self {
        RbTreeConfig {
            initial_size: 512,
            key_range: 1024,
            mix: OpMix::paper(),
            seed: 0x5EED_0002,
        }
    }

    /// Overrides the operation mix.
    #[must_use]
    pub fn with_mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }
}

/// The shared ordered-map workload, generic over the map backend.
///
/// ```
/// use rubic_stm::Stm;
/// use rubic_workloads::rbtree::{RbTreeConfig, RbTreeWorkload};
/// use rubic_runtime::Workload;
///
/// let w = RbTreeWorkload::new(RbTreeConfig::small(), Stm::default());
/// let mut state = w.init_worker(0);
/// for _ in 0..100 {
///     w.run_task(&mut state);
/// }
/// assert!(w.stm().stats().commits() >= 100);
/// ```
pub struct RbTreeWorkloadOn<F: MapFamily> {
    map: F::Map<u64, u64>,
    cfg: RbTreeConfig,
    stm: Stm,
}

/// The historical default: the snapshot-cell red-black tree backend.
pub type RbTreeWorkload = RbTreeWorkloadOn<SnapshotFamily>;

impl<F: MapFamily> RbTreeWorkloadOn<F> {
    /// Builds the tree and fills it with `initial_size` random keys.
    #[must_use]
    pub fn new(cfg: RbTreeConfig, stm: Stm) -> Self {
        let map = F::new_labelled("rbtree.map");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Fill outside the measured phase, one key per transaction (the
        // values don't matter to the benchmark; key*2+1 is arbitrary).
        let mut inserted = 0u64;
        while inserted < cfg.initial_size {
            let key = rng.gen_range(0..cfg.key_range);
            let fresh = stm.atomically(|tx| {
                if map.contains(tx, &key)? {
                    Ok(false)
                } else {
                    map.insert(tx, key, key * 2 + 1)?;
                    Ok(true)
                }
            });
            if fresh {
                inserted += 1;
            }
        }
        RbTreeWorkloadOn { map, cfg, stm }
    }

    /// The underlying STM runtime (for commit-rate reporting).
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// The shared map (for inspection in tests).
    #[must_use]
    pub fn map(&self) -> &F::Map<u64, u64> {
        &self.map
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &RbTreeConfig {
        &self.cfg
    }
}

/// Per-worker state: an independent RNG stream.
pub struct RbWorkerState {
    rng: SmallRng,
}

impl<F: MapFamily> Workload for RbTreeWorkloadOn<F> {
    type WorkerState = RbWorkerState;

    fn init_worker(&self, tid: usize) -> RbWorkerState {
        RbWorkerState {
            rng: SmallRng::seed_from_u64(
                self.cfg.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    fn run_task(&self, state: &mut RbWorkerState) {
        let key = state.rng.gen_range(0..self.cfg.key_range);
        let dice = state.rng.gen_range(0..self.cfg.mix.total());
        if dice < self.cfg.mix.lookup {
            // Declared read-only: under mvcc mode the lookup runs as an
            // abort-free snapshot transaction.
            let _ = self.stm.read_only(|tx| self.map.get(tx, &key));
        } else if dice < self.cfg.mix.lookup + self.cfg.mix.insert {
            let _ = self.stm.atomically(|tx| self.map.insert(tx, key, key));
        } else {
            let _ = self.stm.atomically(|tx| self.map.remove(tx, &key));
        }
    }

    fn drain_aborts(&self, _state: &mut RbWorkerState) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapapi::BTreeFamily;

    #[test]
    fn initial_fill_reaches_target_size() {
        let w = RbTreeWorkload::new(RbTreeConfig::small(), Stm::default());
        assert_eq!(w.map().check_invariants(), Ok(512));
    }

    #[test]
    fn btree_backend_fill_reaches_target_size() {
        let w = RbTreeWorkloadOn::<BTreeFamily>::new(RbTreeConfig::small(), Stm::default());
        assert_eq!(w.map().check_invariants(), Ok(512));
    }

    #[test]
    fn mix_paper_sums_to_1000() {
        assert_eq!(OpMix::paper().total(), 1000);
        assert_eq!(OpMix::read_only().total(), 1000);
        assert_eq!(OpMix::write_heavy().total(), 1000);
    }

    #[test]
    fn tasks_commit_transactions() {
        let w = RbTreeWorkload::new(RbTreeConfig::small(), Stm::default());
        let before = w.stm().stats().commits();
        let mut st = w.init_worker(3);
        for _ in 0..200 {
            w.run_task(&mut st);
        }
        assert!(w.stm().stats().commits() >= before + 200);
    }

    #[test]
    fn read_only_mix_never_writes() {
        let w = RbTreeWorkload::new(
            RbTreeConfig::small().with_mix(OpMix::read_only()),
            Stm::default(),
        );
        let writes_before = w.stm().stats().writes();
        let mut st = w.init_worker(0);
        for _ in 0..300 {
            w.run_task(&mut st);
        }
        assert_eq!(w.stm().stats().writes(), writes_before);
        assert_eq!(w.map().snapshot_entries().len(), 512);
    }

    #[test]
    fn tree_size_stays_stationary_under_mix() {
        let w = RbTreeWorkload::new(RbTreeConfig::small(), Stm::default());
        let mut st = w.init_worker(1);
        for _ in 0..2000 {
            w.run_task(&mut st);
        }
        let len = w.map().check_invariants().expect("map invariants") as f64;
        // Inserts and deletes are symmetric over a half-full key range;
        // the size drifts but stays in the same ballpark.
        assert!(
            (300.0..=724.0).contains(&len),
            "tree size drifted wildly: {len}"
        );
    }

    #[test]
    fn btree_backend_runs_the_same_mix() {
        let w = RbTreeWorkloadOn::<BTreeFamily>::new(
            RbTreeConfig::small().with_mix(OpMix::write_heavy()),
            Stm::default(),
        );
        let mut st = w.init_worker(1);
        for _ in 0..2000 {
            w.run_task(&mut st);
        }
        let len = w.map().check_invariants().expect("btree invariants") as f64;
        assert!(
            (300.0..=724.0).contains(&len),
            "tree size drifted wildly: {len}"
        );
    }

    #[test]
    fn backends_agree_on_the_same_op_stream() {
        // Identical config + seeds ⇒ identical single-threaded op
        // streams ⇒ identical final contents on both backends.
        let cfg = RbTreeConfig::small().with_mix(OpMix::write_heavy());
        let a = RbTreeWorkload::new(cfg.clone(), Stm::default());
        let b = RbTreeWorkloadOn::<BTreeFamily>::new(cfg, Stm::default());
        let mut sa = a.init_worker(0);
        let mut sb = b.init_worker(0);
        for _ in 0..1500 {
            a.run_task(&mut sa);
            b.run_task(&mut sb);
        }
        assert_eq!(a.map().snapshot_entries(), b.map().snapshot_entries());
    }

    #[test]
    fn distinct_workers_use_distinct_streams() {
        let w = RbTreeWorkload::new(RbTreeConfig::small(), Stm::default());
        let mut a = w.init_worker(0);
        let mut b = w.init_worker(1);
        let ka: Vec<u64> = (0..10).map(|_| a.rng.gen_range(0..1000)).collect();
        let kb: Vec<u64> = (0..10).map(|_| b.rng.gen_range(0..1000)).collect();
        assert_ne!(ka, kb);
    }
}
