//! Counter micro-workloads: the two extremes of the contention
//! spectrum.
//!
//! * [`ConflictCounter`] — every task increments the *same* `TVar`: the
//!   maximally contended workload (scalability ≈ none; every pair of
//!   concurrent updates conflicts). Used by the contention-manager
//!   ablation bench and as a worst-case sanity check for the tuner —
//!   a good controller should keep such a workload at 1–2 threads.
//! * [`StripedCounter`] — tasks increment one of `N` stripes chosen by
//!   round-robin per worker: conflict probability ~1/N, so scalability
//!   grows with the stripe count. Sweeping `N` produces a family of
//!   scalability curves for controller studies.

use rubic_sync::atomic::{AtomicUsize, Ordering};

use rubic_runtime::Workload;
use rubic_stm::{Stm, TVar};

/// All tasks hammer one shared transactional counter.
pub struct ConflictCounter {
    counter: TVar<u64>,
    stm: Stm,
}

impl ConflictCounter {
    /// Creates the counter at zero.
    #[must_use]
    pub fn new(stm: Stm) -> Self {
        ConflictCounter {
            counter: TVar::new(0),
            stm,
        }
    }

    /// Current committed value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.counter.snapshot()
    }

    /// The STM runtime.
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }
}

impl Workload for ConflictCounter {
    type WorkerState = ();

    fn init_worker(&self, _tid: usize) {}

    fn run_task(&self, (): &mut ()) {
        self.stm
            .atomically(|tx| tx.modify(&self.counter, |x| x + 1));
    }

    fn drain_aborts(&self, (): &mut ()) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

/// Tasks spread increments across `N` stripes.
pub struct StripedCounter {
    stripes: Vec<TVar<u64>>,
    next: AtomicUsize,
    stm: Stm,
}

impl StripedCounter {
    /// Creates `n` zeroed stripes.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, stm: Stm) -> Self {
        assert!(n >= 1, "need at least one stripe");
        StripedCounter {
            stripes: (0..n).map(|_| TVar::new(0)).collect(),
            next: AtomicUsize::new(0),
            stm,
        }
    }

    /// Sum of all stripes (non-transactional; exact once workers stop).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.stripes.iter().map(TVar::snapshot).sum()
    }

    /// Number of stripes.
    #[must_use]
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// The STM runtime.
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }
}

/// Worker state: the stripe cursor (per-worker offset keeps adjacent
/// workers on different stripes).
pub struct StripeCursor {
    at: usize,
}

impl Workload for StripedCounter {
    type WorkerState = StripeCursor;

    fn init_worker(&self, _tid: usize) -> StripeCursor {
        StripeCursor {
            // ordering: stripe assignment only spreads load across
            // counters; any distribution is correct.
            at: self.next.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn run_task(&self, state: &mut StripeCursor) {
        let stripe = &self.stripes[state.at % self.stripes.len()];
        state.at = state.at.wrapping_add(1);
        self.stm.atomically(|tx| tx.modify(stripe, |x| x + 1));
    }

    fn drain_aborts(&self, _state: &mut StripeCursor) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn conflict_counter_counts() {
        let w = ConflictCounter::new(Stm::default());
        w.init_worker(0);
        for _ in 0..100 {
            w.run_task(&mut ());
        }
        assert_eq!(w.value(), 100);
    }

    #[test]
    fn conflict_counter_no_lost_updates_across_threads() {
        let w = Arc::new(ConflictCounter::new(Stm::default()));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    w.init_worker(tid);
                    for _ in 0..250 {
                        w.run_task(&mut ());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.value(), 1000);
    }

    #[test]
    fn striped_counter_distributes() {
        let w = StripedCounter::new(4, Stm::default());
        let mut s = w.init_worker(0);
        for _ in 0..400 {
            w.run_task(&mut s);
        }
        assert_eq!(w.total(), 400);
        // Round-robin: each stripe got exactly 100.
        for stripe in &w.stripes {
            assert_eq!(stripe.snapshot(), 100);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_rejected() {
        let _ = StripedCounter::new(0, Stm::default());
    }
}
