//! STAMP-style transactional workloads for the RUBIC reproduction.
//!
//! The paper evaluates three benchmarks spanning the scalability
//! spectrum (§4.4):
//!
//! * [`rbtree`] — the red-black-tree micro-benchmark: 64 K elements,
//!   98 % look-ups (highly scalable), plus the 100 %-read-only variant
//!   used by the §4.6 convergence experiment.
//! * [`vacation`] — STAMP Vacation, a travel-reservation system over
//!   four relation tables (moderately scalable).
//! * [`intruder`] — STAMP Intruder, a network-intrusion-detection
//!   pipeline with a shared packet queue and session map (poorly
//!   scalable; Fig. 1's peak-at-7-threads workload).
//!
//! Two counter micro-workloads ([`counter`]) cover the contention
//! extremes for ablation studies, and three further STAMP ports extend
//! the spectrum beyond the paper's evaluation set: [`labyrinth`]
//! (maze routing — long transactions, large write footprints),
//! [`kmeans`] (online clustering — short transactions with a
//! cluster-count contention dial) and [`genome`] (sequencing —
//! dedup + overlap matching with a serial reconstruction oracle).
//!
//! Substrates built for these (and reusable on their own):
//!
//! * [`pers`] — a persistent red-black tree (Okasaki insert, Kahrs
//!   delete) with full invariant checking;
//! * [`pqueue`] — a persistent FIFO queue;
//! * [`tmap`] — the transactional ordered map wrapping [`pers::PMap`]
//!   in a single snapshot-cell `TVar`;
//! * [`btree`] — the transactional B-tree with one `TVar` per node
//!   (per-path conflict footprint);
//! * [`mapapi`] — the [`mapapi::TOrdMap`] contract both maps implement
//!   and the [`mapapi::MapFamily`] backend selector the rbtree and
//!   Vacation workloads are generic over (the stmbench `structure`
//!   axis).
//!
//! Every workload implements [`rubic_runtime::Workload`], so any of
//! them can be driven by the malleable pool under any controller:
//!
//! ```
//! use std::time::Duration;
//! use rubic_controllers::{Rubic, RubicConfig};
//! use rubic_runtime::{MalleablePool, PoolConfig};
//! use rubic_stm::Stm;
//! use rubic_workloads::rbtree::{RbTreeConfig, RbTreeWorkload};
//!
//! let workload = RbTreeWorkload::new(RbTreeConfig::small(), Stm::default());
//! let pool = MalleablePool::start(
//!     PoolConfig::new(4).monitor_period(Duration::from_millis(5)),
//!     workload,
//!     Box::new(Rubic::new(RubicConfig::default(), 4)),
//! );
//! std::thread::sleep(Duration::from_millis(50));
//! let report = pool.stop();
//! assert!(report.total_tasks > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod counter;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod mapapi;
pub mod pers;
pub mod pqueue;
pub mod rbtree;
pub mod tmap;
pub mod vacation;

pub use btree::TBTreeMap;
pub use counter::{ConflictCounter, StripedCounter};
pub use genome::{GenomeConfig, GenomeWorkload};
pub use intruder::{IntruderConfig, IntruderWorkload, IntruderWorkloadOn};
pub use kmeans::{KMeansConfig, KMeansWorkload};
pub use labyrinth::{LabyrinthConfig, LabyrinthWorkload, Maze};
pub use mapapi::{BTreeFamily, MapFamily, SnapshotFamily, TOrdMap};
pub use rbtree::{OpMix, RbTreeConfig, RbTreeWorkload, RbTreeWorkloadOn};
pub use tmap::TMap;
pub use vacation::{Manager, ManagerOn, VacationConfig, VacationWorkload, VacationWorkloadOn};
