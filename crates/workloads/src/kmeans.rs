//! KMeans — a port of the STAMP clustering benchmark in its online
//! (MacQueen) formulation, an extension beyond the paper's three
//! evaluated workloads.
//!
//! STAMP's kmeans runs Lloyd iterations where threads transactionally
//! accumulate partial sums per cluster; the transactional hot spot is
//! the cluster-accumulator update. The sustained-throughput variant
//! here streams points: each task reads all `K` cluster centres
//! (read-only unless updating), assigns the point to the nearest, and
//! transactionally folds it into that cluster's running mean — one
//! short transaction with `K` reads and one write. Conflict probability
//! scales as ~1/K, so the cluster count is a contention dial, like
//! STAMP's low/high variants.

use rubic_sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rubic_runtime::Workload;
use rubic_stm::{Stm, TVar};

/// One cluster's running state.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Current centre.
    pub center: Vec<f64>,
    /// Points folded in so far.
    pub count: u64,
}

impl Cluster {
    /// Online mean update (MacQueen's k-means):
    /// `center += (point - center) / (count + 1)`.
    #[must_use]
    pub fn absorb(&self, point: &[f64]) -> Cluster {
        let count = self.count + 1;
        let center = self
            .center
            .iter()
            .zip(point)
            .map(|(c, p)| c + (p - c) / count as f64)
            .collect();
        Cluster { center, count }
    }
}

/// Squared Euclidean distance.
#[must_use]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// KMeans parameters.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters `K` (STAMP `-n`; the contention dial).
    pub clusters: usize,
    /// Point dimensionality (STAMP `-d`).
    pub dims: usize,
    /// Spread of the synthetic Gaussian-ish blobs around their true
    /// centres.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KMeansConfig {
    /// High contention: few clusters (STAMP `kmeans-high` uses fewer
    /// centres).
    #[must_use]
    pub fn high_contention() -> Self {
        KMeansConfig {
            clusters: 4,
            dims: 8,
            noise: 0.05,
            seed: 0x5EED_0008,
        }
    }

    /// Low contention: many clusters.
    #[must_use]
    pub fn low_contention() -> Self {
        KMeansConfig {
            clusters: 16,
            dims: 8,
            noise: 0.05,
            seed: 0x5EED_0009,
        }
    }
}

/// The KMeans workload: `K` transactional cluster accumulators fed by
/// a synthetic mixture whose true centres are the unit axes scaled by
/// the cluster index (well separated, so convergence is testable).
pub struct KMeansWorkload {
    clusters: Vec<TVar<Cluster>>,
    true_centers: Vec<Vec<f64>>,
    cfg: KMeansConfig,
    stm: Stm,
    assigned: AtomicU64,
}

impl KMeansWorkload {
    /// Creates the workload; cluster `i` starts at its true centre
    /// perturbed (warm start, as STAMP seeds centres from the input).
    #[must_use]
    pub fn new(cfg: KMeansConfig, stm: Stm) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let true_centers: Vec<Vec<f64>> = (0..cfg.clusters)
            .map(|i| {
                (0..cfg.dims)
                    .map(|d| {
                        if d == i % cfg.dims {
                            1.0 + i as f64
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let clusters = true_centers
            .iter()
            .map(|c| {
                let jittered: Vec<f64> = c.iter().map(|x| x + rng.gen_range(-0.2..0.2)).collect();
                TVar::new(Cluster {
                    center: jittered,
                    count: 1,
                })
            })
            .collect();
        KMeansWorkload {
            clusters,
            true_centers,
            cfg,
            stm,
            assigned: AtomicU64::new(0),
        }
    }

    /// The STM runtime.
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// Points assigned so far.
    #[must_use]
    pub fn assigned(&self) -> u64 {
        self.assigned.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Current centres (non-transactional snapshot).
    #[must_use]
    pub fn centers(&self) -> Vec<Vec<f64>> {
        self.clusters.iter().map(|c| c.snapshot().center).collect()
    }

    /// Worst distance between a learned centre and its ground-truth
    /// blob centre.
    #[must_use]
    pub fn max_center_error(&self) -> f64 {
        self.centers()
            .iter()
            .zip(&self.true_centers)
            .map(|(c, t)| dist2(c, t).sqrt())
            .fold(0.0, f64::max)
    }

    fn sample_point(&self, rng: &mut SmallRng) -> Vec<f64> {
        let blob = rng.gen_range(0..self.cfg.clusters);
        self.true_centers[blob]
            .iter()
            .map(|c| c + rng.gen_range(-self.cfg.noise..=self.cfg.noise))
            .collect()
    }

    /// Assigns one point: nearest-centre search over the transaction's
    /// consistent view, then a single cluster update. Returns the
    /// cluster index.
    pub fn assign(&self, point: &[f64]) -> usize {
        let idx = self.stm.atomically(|tx| {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, cvar) in self.clusters.iter().enumerate() {
                let c = tx.read(cvar)?;
                let d = dist2(&c.center, point);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            let cluster = tx.read(&self.clusters[best])?;
            tx.write(&self.clusters[best], cluster.absorb(point))?;
            Ok(best)
        });
        self.assigned.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
        idx
    }
}

/// Per-worker state: the point stream.
pub struct KMeansWorkerState {
    rng: SmallRng,
}

impl Workload for KMeansWorkload {
    type WorkerState = KMeansWorkerState;

    fn init_worker(&self, tid: usize) -> KMeansWorkerState {
        KMeansWorkerState {
            rng: SmallRng::seed_from_u64(
                self.cfg.seed ^ (tid as u64).wrapping_mul(0xB5AD_4ECE_DA1C_E2A9),
            ),
        }
    }

    fn run_task(&self, state: &mut KMeansWorkerState) {
        let point = self.sample_point(&mut state.rng);
        let _ = self.assign(&point);
    }

    fn drain_aborts(&self, _state: &mut KMeansWorkerState) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_is_running_mean() {
        let c = Cluster {
            center: vec![0.0, 0.0],
            count: 1,
        };
        let c2 = c.absorb(&[2.0, 4.0]);
        assert_eq!(c2.count, 2);
        assert!((c2.center[0] - 1.0).abs() < 1e-12);
        assert!((c2.center[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dist2_basics() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn centers_converge_to_blobs() {
        let w = KMeansWorkload::new(KMeansConfig::high_contention(), Stm::default());
        let mut st = w.init_worker(0);
        for _ in 0..2_000 {
            w.run_task(&mut st);
        }
        let err = w.max_center_error();
        assert!(err < 0.25, "centres did not converge: max error {err}");
        assert_eq!(w.assigned(), 2_000);
    }

    #[test]
    fn points_land_on_their_own_blob() {
        let w = KMeansWorkload::new(KMeansConfig::low_contention(), Stm::default());
        // A point exactly at blob 3's centre must be assigned there.
        let target = w.true_centers[3].clone();
        assert_eq!(w.assign(&target), 3);
    }

    #[test]
    fn concurrent_assignment_counts_are_exact() {
        use std::sync::Arc;
        let w = Arc::new(KMeansWorkload::new(
            KMeansConfig::high_contention(),
            Stm::default(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    let mut st = w.init_worker(t);
                    for _ in 0..300 {
                        w.run_task(&mut st);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.assigned(), 1200);
        // Total folded-in points = initial K seeds + all assignments.
        let total: u64 = w.clusters.iter().map(|c| c.snapshot().count).sum();
        assert_eq!(total, 1200 + w.cfg.clusters as u64);
    }

    #[test]
    fn config_presets_differ_in_contention_dial() {
        assert!(KMeansConfig::low_contention().clusters > KMeansConfig::high_contention().clusters);
    }
}
