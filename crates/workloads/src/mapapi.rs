//! Structure-generic ordered-map API.
//!
//! Two transactional ordered maps live in this crate with opposite
//! conflict footprints:
//!
//! * [`TMap`](crate::tmap::TMap) — one persistent tree behind a single
//!   snapshot-cell `TVar`: O(1) reads, but every update conflicts with
//!   every other update on the same map.
//! * [`TBTreeMap`](crate::btree::TBTreeMap) — a B-tree with one `TVar`
//!   per node: a transaction's footprint is the O(log n) root-to-leaf
//!   path it touched, so updates on disjoint subtrees commute.
//!
//! The [`TOrdMap`] trait is the operations contract both implement, and
//! [`MapFamily`] is the backend selector: workloads written against
//! `F: MapFamily` (the rbtree micro-benchmark, Vacation's four tables)
//! swap structures with a type parameter, which is what the stmbench
//! `structure` axis (`snapshot` | `btree`) sweeps.

use rubic_stm::{Transaction, TxResult, TxValue};

use crate::btree::TBTreeMap;
use crate::tmap::{TKey, TMap};

/// The transactional ordered-map operations contract.
///
/// All transactional methods take the transaction first and propagate
/// conflicts through `TxResult`; the two non-transactional methods
/// (`snapshot_entries`, `check_invariants`) are for quiescent
/// inspection in tests and monitoring, with the same caveat as
/// [`rubic_stm::TVar::snapshot`]: they are only a consistent view when
/// no writer is concurrently committing.
pub trait TOrdMap<K: TKey, V: TxValue>: Clone + Send + Sync + 'static {
    /// Creates an empty map.
    fn empty() -> Self;

    /// Creates an empty map whose `TVar`s carry trace labels derived
    /// from `label` (no-op when the `trace` feature is off).
    fn empty_labelled(label: &str) -> Self;

    /// Looks up `key` within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn get(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>>;

    /// Membership test within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn contains(&self, tx: &mut Transaction, key: &K) -> TxResult<bool>;

    /// Inserts `key → value`; returns the previous value if present.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn insert(&self, tx: &mut Transaction, key: K, value: V) -> TxResult<Option<V>>;

    /// Removes `key`; returns the removed value if present.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn remove(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>>;

    /// Reads `key`, applies `f`, writes the result back; inserts
    /// `default` first when absent. Returns the new value.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn update_or(
        &self,
        tx: &mut Transaction,
        key: K,
        default: V,
        f: impl FnOnce(&V) -> V,
    ) -> TxResult<V> {
        let new_value = match self.get(tx, &key)? {
            Some(v) => f(&v),
            None => default,
        };
        self.insert(tx, key, new_value.clone())?;
        Ok(new_value)
    }

    /// Number of entries within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn len(&self, tx: &mut Transaction) -> TxResult<usize>;

    /// True when empty within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn is_empty(&self, tx: &mut Transaction) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Every entry in key order, read within `tx` (bulk reads that must
    /// be consistent with the rest of the transaction).
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    fn entries(&self, tx: &mut Transaction) -> TxResult<Vec<(K, V)>>;

    /// Every entry in key order, read non-transactionally (quiescent
    /// inspection only).
    fn snapshot_entries(&self) -> Vec<(K, V)>;

    /// Checks the structure's internal invariants on a quiescent map;
    /// returns the entry count on success.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    fn check_invariants(&self) -> Result<usize, String>;
}

/// A family of ordered-map structures: the backend selector workloads
/// are generic over.
///
/// `NAME` is the value the stmbench `structure` axis reports for this
/// backend.
pub trait MapFamily: Send + Sync + 'static {
    /// Axis/label name: `"snapshot"` or `"btree"`.
    const NAME: &'static str;
    /// The map type this family builds for a given key/value pair.
    type Map<K: TKey, V: TxValue>: TOrdMap<K, V>;

    /// Builds an empty map.
    #[must_use]
    fn new_map<K: TKey, V: TxValue>() -> Self::Map<K, V> {
        Self::Map::empty()
    }

    /// Builds an empty map with trace labels derived from `label`.
    #[must_use]
    fn new_labelled<K: TKey, V: TxValue>(label: &str) -> Self::Map<K, V> {
        Self::Map::empty_labelled(label)
    }
}

/// The snapshot-cell backend: one persistent tree behind one `TVar`
/// ([`TMap`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotFamily;

impl MapFamily for SnapshotFamily {
    const NAME: &'static str = "snapshot";
    type Map<K: TKey, V: TxValue> = TMap<K, V>;
}

/// The per-node backend: a B-tree with one `TVar` per node
/// ([`TBTreeMap`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BTreeFamily;

impl MapFamily for BTreeFamily {
    const NAME: &'static str = "btree";
    type Map<K: TKey, V: TxValue> = TBTreeMap<K, V>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubic_stm::Stm;

    fn exercise<F: MapFamily>() {
        let stm = Stm::default();
        let m: F::Map<u64, u64> = F::new_map();
        assert!(stm.atomically(|tx| m.is_empty(tx)));
        assert_eq!(stm.atomically(|tx| m.insert(tx, 2, 20)), None);
        assert_eq!(stm.atomically(|tx| m.insert(tx, 1, 10)), None);
        assert_eq!(stm.atomically(|tx| m.insert(tx, 2, 22)), Some(20));
        assert_eq!(stm.atomically(|tx| m.update_or(tx, 3, 1, |v| v + 1)), 1);
        assert_eq!(stm.atomically(|tx| m.update_or(tx, 3, 1, |v| v + 1)), 2);
        assert_eq!(stm.atomically(|tx| m.get(tx, &1)), Some(10));
        assert!(stm.atomically(|tx| m.contains(tx, &2)));
        assert_eq!(stm.atomically(|tx| m.len(tx)), 3);
        assert_eq!(
            stm.atomically(|tx| m.entries(tx)),
            vec![(1, 10), (2, 22), (3, 2)]
        );
        assert_eq!(m.snapshot_entries(), vec![(1, 10), (2, 22), (3, 2)]);
        assert_eq!(stm.atomically(|tx| m.remove(tx, &2)), Some(22));
        assert_eq!(stm.atomically(|tx| m.remove(tx, &2)), None);
        assert_eq!(m.check_invariants(), Ok(2));
    }

    #[test]
    fn snapshot_family_satisfies_contract() {
        exercise::<SnapshotFamily>();
    }

    #[test]
    fn btree_family_satisfies_contract() {
        exercise::<BTreeFamily>();
    }

    #[test]
    fn family_names_match_bench_axis() {
        assert_eq!(SnapshotFamily::NAME, "snapshot");
        assert_eq!(BTreeFamily::NAME, "btree");
    }
}
