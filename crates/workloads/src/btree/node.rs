//! B-tree node representation and occupancy rules.
//!
//! A node is a plain value (`Clone + Send + Sync`) published through a
//! `TVar`, so all mutation is copy-on-write inside the writing
//! transaction: read the node, build the modified copy, `tx.write` it
//! back. Child links are `TVar` *handles* (`Arc`-backed), cheap to
//! clone and stable across republishes of the child's contents.
//!
//! The tree is a B+-tree: values live only in leaves; branches carry
//! separator keys. Separator `seps[i]` is the minimum key of subtree
//! `kids[i + 1]`, so a lookup descends into
//! `kids[partition_point(sep <= key)]`.

use rubic_stm::{TVar, TxValue};

use crate::tmap::TKey;

/// Maximum entries per leaf (the leaf fanout).
///
/// Tuned with stmbench (DESIGN.md §16): 32 keeps the bench's
/// 4096-element tree at depth 3 (root → branch → leaf, ~170 leaves at
/// the ~3/4-full steady state), so a lookup is 3 validated reads and an
/// update's access set (3 reads + 1 leaf write) stays on the access-set
/// index's inline path. At 16 the same tree is depth 4 — one more
/// protocol read on every descent cost ~25 % of read-only throughput —
/// while the wider leaf's copy-on-write clone (32 entries, one memcpy)
/// costs nothing measurable on the write-heavy mix.
pub const MAX_LEAF: usize = 32;
/// Minimum entries per non-root leaf.
pub const MIN_LEAF: usize = MAX_LEAF / 2;
/// Maximum separators per branch (branch fanout = `MAX_SEPS + 1` = 16).
pub const MAX_SEPS: usize = 15;
/// Minimum separators per non-root branch.
pub const MIN_SEPS: usize = MAX_SEPS.div_ceil(2) - 1;

/// A `TVar`-published handle to one node.
pub type NodeVar<K, V> = TVar<Node<K, V>>;

/// One B+-tree node.
#[derive(Debug, Clone)]
pub enum Node<K: TKey, V: TxValue> {
    /// A leaf: sorted `(key, value)` entries.
    Leaf(Vec<(K, V)>),
    /// An interior node: sorted separator keys and `seps.len() + 1`
    /// child handles.
    Branch {
        /// Separator keys; `seps[i]` is the least key reachable through
        /// `kids[i + 1]`.
        seps: Vec<K>,
        /// Child handles.
        kids: Vec<NodeVar<K, V>>,
    },
}

impl<K: TKey, V: TxValue> Node<K, V> {
    /// An empty leaf — the initial root.
    #[must_use]
    pub fn empty() -> Self {
        Node::Leaf(Vec::new())
    }

    /// Index of the child subtree a search for `key` descends into.
    /// Keys equal to a separator live in the subtree to its right.
    #[must_use]
    pub fn child_index(seps: &[K], key: &K) -> usize {
        seps.partition_point(|s| s <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn occupancy_constants_are_consistent() {
        assert!(MIN_LEAF * 2 <= MAX_LEAF);
        assert!(MIN_SEPS * 2 <= MAX_SEPS);
        // A split of an overflowed node leaves both halves legal.
        assert!(MAX_LEAF.div_ceil(2) >= MIN_LEAF);
        assert!(MAX_SEPS.div_ceil(2) > MIN_SEPS);
        // A merge of a minimal node with an underfull sibling fits.
        assert!(MIN_LEAF + MIN_LEAF - 1 <= MAX_LEAF);
        assert!(MIN_SEPS + MIN_SEPS <= MAX_SEPS); // + 1 pulled-down sep
    }

    #[test]
    fn child_index_routes_equal_keys_right() {
        let seps = vec![10u64, 20, 30];
        assert_eq!(Node::<u64, u64>::child_index(&seps, &5), 0);
        assert_eq!(Node::<u64, u64>::child_index(&seps, &10), 1);
        assert_eq!(Node::<u64, u64>::child_index(&seps, &15), 1);
        assert_eq!(Node::<u64, u64>::child_index(&seps, &30), 3);
        assert_eq!(Node::<u64, u64>::child_index(&seps, &99), 3);
    }
}
