//! `TBTreeMap` — a transactional B-tree with one `TVar` per node.
//!
//! The snapshot-cell map ([`crate::tmap::TMap`]) hides a whole
//! persistent tree behind a single `TVar`, so every update conflicts
//! with every other update — a scaling ceiling no controller can tune
//! away. Here each node lives behind its **own** `TVar`: a
//! transaction's conflict footprint is the O(log n) root-to-leaf path
//! it actually touched, so updates on disjoint subtrees commute and
//! readers on other subtrees never even validate against them.
//!
//! Splits and merges are copy-on-write *inside* the writing
//! transaction: a split builds the sibling in a freshly allocated
//! `TVar` (invisible to everyone until the parent write commits) and
//! rewrites the parent to link it; a height change rewrites the fixed
//! root `TVar`'s contents in place, so the map handle never changes.
//! Concurrent transactions see either the whole restructuring or none
//! of it — the STM's opacity guarantee, model-checked in
//! `rubic-check`'s `btree` split/merge model.
//!
//! Why this is safe against "lost" structural updates: every descent
//! records each path node in the transaction's read set, and every
//! structural change rewrites the parent of the node it moves. Two
//! transactions that disagree about the tree shape therefore overlap on
//! at least one `TVar` (the deepest common path node that changed), and
//! validation aborts one of them.

pub mod node;

use std::sync::Arc;

use rubic_stm::{TVar, Transaction, TxResult, TxValue};

use crate::mapapi::TOrdMap;
use crate::tmap::TKey;

use node::{Node, NodeVar, MAX_LEAF, MAX_SEPS, MIN_LEAF, MIN_SEPS};

/// A transactional ordered map with a per-node conflict footprint.
///
/// ```
/// use rubic_stm::Stm;
/// use rubic_workloads::btree::TBTreeMap;
/// use rubic_workloads::mapapi::TOrdMap;
///
/// let stm = Stm::default();
/// let m: TBTreeMap<u64, u64> = TBTreeMap::new();
/// stm.atomically(|tx| m.insert(tx, 7, 70));
/// let v = stm.atomically(|tx| m.get(tx, &7));
/// assert_eq!(v, Some(70));
/// ```
pub struct TBTreeMap<K: TKey, V: TxValue> {
    /// The fixed root handle. Height changes rewrite its *contents*;
    /// the handle itself never changes, so clones of the map stay
    /// valid.
    root: NodeVar<K, V>,
    /// Base trace label; interior nodes created by splits are labelled
    /// `{label}/node@d{depth}`.
    label: Option<Arc<str>>,
}

/// One step of a root-to-leaf descent, computed inside `read_with` so
/// only the child handle (an `Arc` clone) or the leaf's entries escape
/// the closure.
enum Step<K: TKey, V: TxValue> {
    Child(usize, NodeVar<K, V>),
    AtLeaf(Vec<(K, V)>),
}

/// What a traversal read out of one node.
enum Walk<K: TKey, V: TxValue> {
    Entries(Vec<(K, V)>),
    Kids(Vec<NodeVar<K, V>>),
}

impl<K: TKey, V: TxValue> TBTreeMap<K, V> {
    /// Creates an empty transactional B-tree.
    #[must_use]
    pub fn new() -> Self {
        TBTreeMap {
            root: TVar::new(Node::empty()),
            label: None,
        }
    }

    /// Creates an empty B-tree whose root (and every node a split later
    /// creates) carries a trace label derived from `label`, so PR 7's
    /// contention table and post-mortem bundles name hot nodes (e.g.
    /// `vacation.flights/node@d2`) instead of raw lock addresses.
    #[must_use]
    pub fn labelled(label: &str) -> Self {
        TBTreeMap {
            root: TVar::labelled(Node::empty(), &format!("{label}/root")),
            label: Some(Arc::from(label)),
        }
    }

    /// Allocates a node `TVar`, labelling it with its creation depth
    /// when the map is labelled.
    fn alloc(&self, node: Node<K, V>, depth: usize) -> NodeVar<K, V> {
        match &self.label {
            Some(l) => TVar::labelled(node, &format!("{l}/node@d{depth}")),
            None => TVar::new(node),
        }
    }

    /// Descends from the root to the leaf owning `key`, recording the
    /// branch path as `(node, child index)` pairs and returning the
    /// leaf's handle and entries. Every node on the path lands in the
    /// read set — that is the conflict footprint.
    #[allow(clippy::type_complexity)]
    fn descend(
        &self,
        tx: &mut Transaction,
        key: &K,
        path: &mut Vec<(NodeVar<K, V>, usize)>,
    ) -> TxResult<(NodeVar<K, V>, Vec<(K, V)>)> {
        let mut cur = self.root.clone();
        loop {
            let step = tx.read_with(&cur, |n| match n {
                Node::Branch { seps, kids } => {
                    let i = Node::<K, V>::child_index(seps, key);
                    Step::Child(i, kids[i].clone())
                }
                Node::Leaf(entries) => Step::AtLeaf(entries.clone()),
            })?;
            match step {
                Step::Child(i, child) => {
                    path.push((cur, i));
                    cur = child;
                }
                Step::AtLeaf(entries) => return Ok((cur, entries)),
            }
        }
    }

    /// Reads `var` as the branch the descent proved it to be.
    #[allow(clippy::type_complexity)]
    fn read_branch(
        tx: &mut Transaction,
        var: &NodeVar<K, V>,
    ) -> TxResult<(Vec<K>, Vec<NodeVar<K, V>>)> {
        match tx.read(var)? {
            Node::Branch { seps, kids } => Ok((seps, kids)),
            Node::Leaf(_) => unreachable!("descent recorded a leaf as a branch"),
        }
    }

    /// Inserts after an overflow: splits the leaf, then bubbles the
    /// split up the recorded path, copy-on-write at every level. Fresh
    /// sibling `TVar`s stay private until the commit publishes the
    /// parent that links them.
    fn split_up(
        &self,
        tx: &mut Transaction,
        leaf: &NodeVar<K, V>,
        mut entries: Vec<(K, V)>,
        mut path: Vec<(NodeVar<K, V>, usize)>,
    ) -> TxResult<()> {
        let right_entries = entries.split_off(entries.len() / 2);
        let mut sep = right_entries[0].0.clone();
        let leaf_depth = if path.is_empty() { 1 } else { path.len() };
        let mut right = self.alloc(Node::Leaf(right_entries), leaf_depth);
        if path.is_empty() {
            // The root itself was the overflowing leaf: grow the tree
            // by rewriting the root contents as a 2-child branch.
            let left = self.alloc(Node::Leaf(entries), 1);
            tx.write(
                &self.root,
                Node::Branch {
                    seps: vec![sep],
                    kids: vec![left, right],
                },
            )?;
            return Ok(());
        }
        tx.write(leaf, Node::Leaf(entries))?;
        loop {
            let (pvar, idx) = path.pop().expect("split_up loop owns a non-empty path");
            let (mut seps, mut kids) = Self::read_branch(tx, &pvar)?;
            seps.insert(idx, sep);
            kids.insert(idx + 1, right);
            if seps.len() <= MAX_SEPS {
                tx.write(&pvar, Node::Branch { seps, kids })?;
                return Ok(());
            }
            // Branch overflow: split around the median separator.
            let mid = seps.len() / 2;
            let right_seps = seps.split_off(mid + 1);
            let promoted = seps.pop().expect("median separator");
            let right_kids = kids.split_off(mid + 1);
            let depth = path.len();
            let new_right = self.alloc(
                Node::Branch {
                    seps: right_seps,
                    kids: right_kids,
                },
                depth,
            );
            if path.is_empty() {
                // Splitting the root branch: grow in place.
                let left = self.alloc(Node::Branch { seps, kids }, depth + 1);
                tx.write(
                    &self.root,
                    Node::Branch {
                        seps: vec![promoted],
                        kids: vec![left, new_right],
                    },
                )?;
                return Ok(());
            }
            tx.write(&pvar, Node::Branch { seps, kids })?;
            sep = promoted;
            right = new_right;
        }
    }

    /// Repairs the underfull child at `kids[idx]` of the branch `pvar`
    /// by borrowing from an adjacent sibling when it has spare
    /// occupancy, or merging with it otherwise (orphaning one `TVar`
    /// for the epoch reclaimer). Returns whether `pvar` itself is now
    /// underfull.
    fn rebalance(&self, tx: &mut Transaction, pvar: &NodeVar<K, V>, idx: usize) -> TxResult<bool> {
        let (mut seps, mut kids) = Self::read_branch(tx, pvar)?;
        // Work on the (left, right) adjacent pair containing the
        // underfull child; `sep_at` separates them in the parent.
        let (li, sep_at) = if idx > 0 { (idx - 1, idx - 1) } else { (0, 0) };
        let left_var = kids[li].clone();
        let right_var = kids[li + 1].clone();
        let merged = match (tx.read(&left_var)?, tx.read(&right_var)?) {
            (Node::Leaf(mut l), Node::Leaf(mut r)) => {
                if idx > 0 && l.len() > MIN_LEAF {
                    // Borrow the left sibling's last entry.
                    let e = l.pop().expect("non-empty donor");
                    seps[sep_at] = e.0.clone();
                    r.insert(0, e);
                    tx.write(&left_var, Node::Leaf(l))?;
                    tx.write(&right_var, Node::Leaf(r))?;
                    false
                } else if idx == 0 && r.len() > MIN_LEAF {
                    // Borrow the right sibling's first entry.
                    let e = r.remove(0);
                    l.push(e);
                    seps[sep_at] = r[0].0.clone();
                    tx.write(&left_var, Node::Leaf(l))?;
                    tx.write(&right_var, Node::Leaf(r))?;
                    false
                } else {
                    // Merge right into left; `right_var` becomes
                    // unreachable and is reclaimed with the old parent
                    // version by the epoch GC.
                    l.append(&mut r);
                    tx.write(&left_var, Node::Leaf(l))?;
                    true
                }
            }
            (
                Node::Branch {
                    seps: mut ls,
                    kids: mut lk,
                },
                Node::Branch {
                    seps: mut rs,
                    kids: mut rk,
                },
            ) => {
                if idx > 0 && ls.len() > MIN_SEPS {
                    // Rotate right through the parent separator.
                    rs.insert(0, seps[sep_at].clone());
                    rk.insert(0, lk.pop().expect("donor child"));
                    seps[sep_at] = ls.pop().expect("donor separator");
                    tx.write(&left_var, Node::Branch { seps: ls, kids: lk })?;
                    tx.write(&right_var, Node::Branch { seps: rs, kids: rk })?;
                    false
                } else if idx == 0 && rs.len() > MIN_SEPS {
                    // Rotate left through the parent separator.
                    ls.push(seps[sep_at].clone());
                    lk.push(rk.remove(0));
                    seps[sep_at] = rs.remove(0);
                    tx.write(&left_var, Node::Branch { seps: ls, kids: lk })?;
                    tx.write(&right_var, Node::Branch { seps: rs, kids: rk })?;
                    false
                } else {
                    // Merge: left ++ pulled-down separator ++ right.
                    ls.push(seps[sep_at].clone());
                    ls.append(&mut rs);
                    lk.append(&mut rk);
                    tx.write(&left_var, Node::Branch { seps: ls, kids: lk })?;
                    true
                }
            }
            _ => unreachable!("siblings at the same depth share a kind"),
        };
        if merged {
            seps.remove(sep_at);
            kids.remove(li + 1);
        }
        let underfull = seps.len() < MIN_SEPS;
        tx.write(pvar, Node::Branch { seps, kids })?;
        Ok(merged && underfull)
    }

    /// Shrinks the tree when the root branch is down to a single child:
    /// pulls that child's contents up into the root `TVar`.
    fn collapse_root(&self, tx: &mut Transaction) -> TxResult<()> {
        let lone = tx.read_with(&self.root, |n| match n {
            Node::Branch { seps, kids } if seps.is_empty() => Some(kids[0].clone()),
            _ => None,
        })?;
        if let Some(child) = lone {
            let pulled = tx.read(&child)?;
            tx.write(&self.root, pulled)?;
        }
        Ok(())
    }

    /// Walks the subtree under `var` in key order, appending leaf
    /// entries to `out`.
    fn collect(
        &self,
        tx: &mut Transaction,
        var: &NodeVar<K, V>,
        out: &mut Vec<(K, V)>,
    ) -> TxResult<()> {
        // The closure only *returns* data (it may re-run on validation
        // retries); mutation of `out` happens outside it.
        let walk = tx.read_with(var, |n| match n {
            Node::Leaf(entries) => Walk::Entries(entries.clone()),
            Node::Branch { kids, .. } => Walk::Kids(kids.clone()),
        })?;
        match walk {
            Walk::Entries(mut entries) => out.append(&mut entries),
            Walk::Kids(kids) => {
                for kid in &kids {
                    self.collect(tx, kid, out)?;
                }
            }
        }
        Ok(())
    }

    /// Counts entries under `var` without cloning values.
    fn count(&self, tx: &mut Transaction, var: &NodeVar<K, V>) -> TxResult<usize> {
        enum Tally<K: TKey, V: TxValue> {
            Leaf(usize),
            Kids(Vec<NodeVar<K, V>>),
        }
        let tally = tx.read_with(var, |n| match n {
            Node::Leaf(entries) => Tally::Leaf(entries.len()),
            Node::Branch { kids, .. } => Tally::Kids(kids.clone()),
        })?;
        match tally {
            Tally::Leaf(n) => Ok(n),
            Tally::Kids(kids) => {
                let mut sum = 0;
                for kid in &kids {
                    sum += self.count(tx, kid)?;
                }
                Ok(sum)
            }
        }
    }

    /// Non-transactional in-order walk (quiescent inspection only —
    /// the per-node snapshots are individually consistent but not
    /// mutually, exactly the [`TVar::snapshot`] caveat).
    fn snapshot_collect(var: &NodeVar<K, V>, out: &mut Vec<(K, V)>) {
        match var.snapshot() {
            Node::Leaf(mut entries) => out.append(&mut entries),
            Node::Branch { kids, .. } => {
                for kid in &kids {
                    Self::snapshot_collect(kid, out);
                }
            }
        }
    }

    /// Checks structural invariants under `var`: key ordering within
    /// `bounds`, node occupancy, separator/child arity, and uniform
    /// leaf depth. Returns `(entry count, leaf depth)`.
    fn check_node(
        var: &NodeVar<K, V>,
        depth: usize,
        bounds: (Option<&K>, Option<&K>),
        is_root: bool,
    ) -> Result<(usize, usize), String> {
        let (lo, hi) = bounds;
        let in_bounds = |k: &K| lo.is_none_or(|l| l <= k) && hi.is_none_or(|h| k < h);
        match var.snapshot() {
            Node::Leaf(entries) => {
                if !is_root && entries.len() < MIN_LEAF {
                    return Err(format!(
                        "leaf at depth {depth} underfull: {} < {MIN_LEAF}",
                        entries.len()
                    ));
                }
                if entries.len() > MAX_LEAF {
                    return Err(format!(
                        "leaf at depth {depth} overfull: {} > {MAX_LEAF}",
                        entries.len()
                    ));
                }
                if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(format!("leaf at depth {depth} keys not strictly sorted"));
                }
                if !entries.iter().all(|(k, _)| in_bounds(k)) {
                    return Err(format!(
                        "leaf at depth {depth} key outside separator bounds"
                    ));
                }
                Ok((entries.len(), depth))
            }
            Node::Branch { seps, kids } => {
                if kids.len() != seps.len() + 1 {
                    return Err(format!(
                        "branch at depth {depth}: {} kids for {} seps",
                        kids.len(),
                        seps.len()
                    ));
                }
                if seps.is_empty() {
                    return Err(format!("branch at depth {depth} has no separators"));
                }
                if !is_root && seps.len() < MIN_SEPS {
                    return Err(format!(
                        "branch at depth {depth} underfull: {} < {MIN_SEPS}",
                        seps.len()
                    ));
                }
                if seps.len() > MAX_SEPS {
                    return Err(format!(
                        "branch at depth {depth} overfull: {} > {MAX_SEPS}",
                        seps.len()
                    ));
                }
                if !seps.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("branch at depth {depth} seps not strictly sorted"));
                }
                if !seps.iter().all(&in_bounds) {
                    return Err(format!(
                        "branch at depth {depth} separator outside parent bounds"
                    ));
                }
                let mut total = 0;
                let mut leaf_depth = None;
                for (i, kid) in kids.iter().enumerate() {
                    let lo = if i == 0 { lo } else { Some(&seps[i - 1]) };
                    let hi = if i == seps.len() { hi } else { Some(&seps[i]) };
                    let (n, d) = Self::check_node(kid, depth + 1, (lo, hi), false)?;
                    total += n;
                    if *leaf_depth.get_or_insert(d) != d {
                        return Err(format!(
                            "leaves at unequal depths under branch at depth {depth}"
                        ));
                    }
                }
                Ok((total, leaf_depth.expect("branch has children")))
            }
        }
    }

    /// Checks all B-tree invariants on a quiescent map; returns
    /// `(entry count, leaf depth)` on success.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn check_shape(&self) -> Result<(usize, usize), String> {
        Self::check_node(&self.root, 0, (None, None), true)
    }
}

impl<K: TKey, V: TxValue> TOrdMap<K, V> for TBTreeMap<K, V> {
    fn empty() -> Self {
        TBTreeMap::new()
    }

    fn empty_labelled(label: &str) -> Self {
        TBTreeMap::labelled(label)
    }

    fn get(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>> {
        let mut cur = self.root.clone();
        loop {
            // Lookups don't need the path: each level either returns
            // the value or the next child handle.
            let step = tx.read_with(&cur, |n| match n {
                Node::Branch { seps, kids } => {
                    let i = Node::<K, V>::child_index(seps, key);
                    Err(kids[i].clone())
                }
                Node::Leaf(entries) => Ok(entries
                    .binary_search_by(|(k, _)| k.cmp(key))
                    .ok()
                    .map(|i| entries[i].1.clone())),
            })?;
            match step {
                Ok(found) => return Ok(found),
                Err(child) => cur = child,
            }
        }
    }

    fn contains(&self, tx: &mut Transaction, key: &K) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    fn insert(&self, tx: &mut Transaction, key: K, value: V) -> TxResult<Option<V>> {
        let mut path = Vec::new();
        let (leaf, mut entries) = self.descend(tx, &key, &mut path)?;
        match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => {
                // Replacement never changes occupancy: one leaf write.
                let old = std::mem::replace(&mut entries[i].1, value);
                tx.write(&leaf, Node::Leaf(entries))?;
                Ok(Some(old))
            }
            Err(i) => {
                entries.insert(i, (key, value));
                if entries.len() <= MAX_LEAF {
                    tx.write(&leaf, Node::Leaf(entries))?;
                } else {
                    self.split_up(tx, &leaf, entries, path)?;
                }
                Ok(None)
            }
        }
    }

    fn remove(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>> {
        let mut path = Vec::new();
        let (leaf, mut entries) = self.descend(tx, key, &mut path)?;
        let Ok(i) = entries.binary_search_by(|(k, _)| k.cmp(key)) else {
            // Absent key: zero writes, so no-op removals on disjoint
            // keys never conflict with each other.
            return Ok(None);
        };
        let (_, removed) = entries.remove(i);
        let mut underfull = entries.len() < MIN_LEAF && !path.is_empty();
        tx.write(&leaf, Node::Leaf(entries))?;
        while underfull {
            let (pvar, idx) = path.pop().expect("underfull implies a parent");
            underfull = self.rebalance(tx, &pvar, idx)? && !path.is_empty();
        }
        self.collapse_root(tx)?;
        Ok(Some(removed))
    }

    fn len(&self, tx: &mut Transaction) -> TxResult<usize> {
        let root = self.root.clone();
        self.count(tx, &root)
    }

    fn entries(&self, tx: &mut Transaction) -> TxResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        let root = self.root.clone();
        self.collect(tx, &root, &mut out)?;
        Ok(out)
    }

    fn snapshot_entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        Self::snapshot_collect(&self.root, &mut out);
        out
    }

    fn check_invariants(&self) -> Result<usize, String> {
        self.check_shape().map(|(len, _)| len)
    }
}

impl<K: TKey, V: TxValue> Default for TBTreeMap<K, V> {
    fn default() -> Self {
        TBTreeMap::new()
    }
}

impl<K: TKey, V: TxValue> Clone for TBTreeMap<K, V> {
    /// Clones the *handle*: both handles address the same tree.
    fn clone(&self) -> Self {
        TBTreeMap {
            root: self.root.clone(),
            label: self.label.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubic_stm::Stm;

    fn filled(stm: &Stm, n: u64) -> TBTreeMap<u64, u64> {
        let m = TBTreeMap::new();
        for k in 0..n {
            // Scatter the insertion order so splits happen everywhere.
            let k = (k * 2_654_435_761) % n;
            stm.atomically(|tx| m.insert(tx, k, k * 10));
        }
        m
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let stm = Stm::default();
        let m: TBTreeMap<u32, String> = TBTreeMap::new();
        assert_eq!(stm.atomically(|tx| m.insert(tx, 1, "one".into())), None);
        assert_eq!(
            stm.atomically(|tx| m.insert(tx, 1, "uno".into())),
            Some("one".to_string())
        );
        assert_eq!(stm.atomically(|tx| m.get(tx, &1)), Some("uno".to_string()));
        assert_eq!(
            stm.atomically(|tx| m.remove(tx, &1)),
            Some("uno".to_string())
        );
        assert_eq!(stm.atomically(|tx| m.get(tx, &1)), None);
    }

    #[test]
    fn grows_through_splits_and_keeps_shape() {
        let stm = Stm::default();
        let m = filled(&stm, 2000);
        let (len, depth) = m.check_shape().expect("btree invariants");
        assert_eq!(len, 2000);
        assert!(depth >= 2, "2000 entries must have split: depth {depth}");
        assert_eq!(stm.atomically(|tx| m.len(tx)), 2000);
        for k in (0..2000).step_by(97) {
            assert_eq!(stm.atomically(|tx| m.get(tx, &k)), Some(k * 10));
        }
    }

    #[test]
    fn shrinks_through_merges_back_to_a_leaf() {
        let stm = Stm::default();
        let m = filled(&stm, 1000);
        for k in 0..1000 {
            assert_eq!(stm.atomically(|tx| m.remove(tx, &k)), Some(k * 10));
            if k % 128 == 0 {
                m.check_shape().expect("btree invariants during drain");
            }
        }
        let (len, depth) = m.check_shape().expect("btree invariants");
        assert_eq!(
            (len, depth),
            (0, 0),
            "drained tree collapses to a root leaf"
        );
    }

    #[test]
    fn entries_are_sorted_and_complete() {
        let stm = Stm::default();
        let m = filled(&stm, 300);
        let entries = stm.atomically(|tx| m.entries(tx));
        assert_eq!(entries.len(), 300);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(m.snapshot_entries(), entries);
    }

    #[test]
    fn remove_missing_key_avoids_writes() {
        let stm = Stm::default();
        let m = filled(&stm, 100);
        let writes_before = stm.stats().writes();
        assert_eq!(stm.atomically(|tx| m.remove(tx, &100_000)), None);
        assert_eq!(
            stm.stats().writes(),
            writes_before,
            "no-op removal must not write"
        );
    }

    #[test]
    fn disjoint_subtree_updates_do_not_conflict() {
        // Two transactions inserting into far-apart keys of a deep tree
        // touch disjoint leaves; only the (read-shared) path overlaps,
        // so neither aborts.
        let stm = Stm::default();
        let m = std::sync::Arc::new(filled(&stm, 2000));
        let aborts_before = stm.stats().aborts();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let stm = stm.clone();
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        // Replace existing values: no structural change,
                        // each thread in its own key region.
                        let key = t * 500 + (i % 450);
                        stm.atomically(|tx| m.insert(tx, key, key));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (len, _) = m.check_shape().expect("btree invariants");
        assert_eq!(len, 2000);
        // Not asserting zero (threads may race on a shared leaf at
        // region edges), but the snapshot-cell design would abort
        // hundreds of times here.
        let aborts = stm.stats().aborts() - aborts_before;
        assert!(aborts < 100, "per-node map should rarely abort: {aborts}");
    }

    #[test]
    fn concurrent_structural_churn_keeps_invariants() {
        let stm = Stm::default();
        let m = std::sync::Arc::new(TBTreeMap::<u64, u64>::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let stm = stm.clone();
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = (t * 1000 + i * 7) % 512;
                        if i % 3 == 0 {
                            stm.atomically(|tx| m.remove(tx, &key));
                        } else {
                            stm.atomically(|tx| m.insert(tx, key, i));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        m.check_shape().expect("btree invariants after churn");
    }

    #[test]
    fn labelled_map_builds_and_works() {
        let stm = Stm::default();
        let m: TBTreeMap<u64, u64> = TBTreeMap::labelled("test.table");
        for k in 0..100 {
            stm.atomically(|tx| m.insert(tx, k, k));
        }
        assert_eq!(stm.atomically(|tx| m.len(tx)), 100);
        m.check_shape().expect("labelled map invariants");
    }

    #[test]
    fn clone_shares_state() {
        let stm = Stm::default();
        let a: TBTreeMap<u8, u8> = TBTreeMap::new();
        let b = a.clone();
        stm.atomically(|tx| a.insert(tx, 1, 1));
        assert_eq!(stm.atomically(|tx| b.get(tx, &1)), Some(1));
    }

    #[test]
    fn mixed_ops_cross_check_against_std() {
        let mut oracle = std::collections::BTreeMap::new();
        let stm = Stm::default();
        let m: TBTreeMap<u64, u64> = TBTreeMap::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..4000 {
            // xorshift: deterministic pseudo-random op stream.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 300;
            match x % 5 {
                0..=2 => {
                    assert_eq!(
                        stm.atomically(|tx| m.insert(tx, key, x)),
                        oracle.insert(key, x)
                    );
                }
                3 => {
                    assert_eq!(stm.atomically(|tx| m.remove(tx, &key)), oracle.remove(&key));
                }
                _ => {
                    assert_eq!(
                        stm.atomically(|tx| m.get(tx, &key)),
                        oracle.get(&key).copied()
                    );
                }
            }
        }
        let (len, _) = m.check_shape().expect("btree invariants");
        assert_eq!(len, oracle.len());
        let entries = stm.atomically(|tx| m.entries(tx));
        assert_eq!(entries, oracle.into_iter().collect::<Vec<_>>());
    }
}
