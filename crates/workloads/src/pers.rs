//! A persistent (immutable, structurally shared) red-black tree map.
//!
//! This is the ordered-map substrate behind the STM workloads: the
//! red-black-tree microbenchmark and Vacation's four relation tables
//! store a [`PMap`] inside a single `TVar`. Updates build a new tree
//! that shares all untouched subtrees with the old one (`Arc` nodes), so
//! a transactional update is "read snapshot → functional update → write
//! snapshot" — exactly the snapshot discipline our STM's immutable
//! published values require (see `rubic-stm`'s crate docs and DESIGN.md
//! §3).
//!
//! Algorithms: Okasaki's classic balancing insert and Kahrs' deletion
//! (the standard functional red-black deletion that *preserves both
//! red-black invariants*), ported from the Haskell reference. The
//! [`PMap::check_invariants`] method verifies (1) BST ordering, (2) no
//! red node has a red child, and (3) equal black height on every path —
//! the property-based tests run it after every operation.

use std::cmp::Ordering as Ord_;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

use Color::{Black, Red};

/// `None` = empty (all leaves are black nil nodes conceptually).
type Link<K, V> = Option<Arc<Node<K, V>>>;

#[derive(Debug)]
struct Node<K, V> {
    color: Color,
    left: Link<K, V>,
    key: K,
    value: V,
    right: Link<K, V>,
}

fn node<K, V>(color: Color, left: Link<K, V>, key: K, value: V, right: Link<K, V>) -> Link<K, V> {
    Some(Arc::new(Node {
        color,
        left,
        key,
        value,
        right,
    }))
}

fn color_of<K, V>(link: &Link<K, V>) -> Color {
    match link {
        Some(n) => n.color,
        None => Black,
    }
}

/// A persistent ordered map with red-black balancing.
///
/// Cloning is `O(1)` (shares the whole structure); all updates return
/// new maps. `len` is maintained incrementally.
///
/// ```
/// use rubic_workloads::pers::PMap;
/// let m0: PMap<u32, &str> = PMap::new();
/// let m1 = m0.insert(2, "two").0;
/// let m2 = m1.insert(1, "one").0;
/// assert_eq!(m2.get(&2), Some(&"two"));
/// assert_eq!(m1.get(&1), None, "persistence: m1 is unchanged");
/// assert_eq!(m2.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PMap<K, V> {
    root: Link<K, V>,
    len: usize,
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap::new()
    }
}

impl<K, V> PMap<K, V> {
    /// The empty map.
    #[must_use]
    pub fn new() -> Self {
        PMap { root: None, len: 0 }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ord_::Less => cur = &n.left,
                Ord_::Greater => cur = &n.right,
                Ord_::Equal => return Some(&n.value),
            }
        }
        None
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// The smallest key (with its value), if any.
    #[must_use]
    pub fn min(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = cur.left.as_ref() {
            cur = l;
        }
        Some((&cur.key, &cur.value))
    }

    /// The largest key (with its value), if any.
    #[must_use]
    pub fn max(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_ref()?;
        while let Some(r) = cur.right.as_ref() {
            cur = r;
        }
        Some((&cur.key, &cur.value))
    }

    /// Inserts `key → value`; returns the new map and the previous
    /// value, if the key was present.
    #[must_use]
    pub fn insert(&self, key: K, value: V) -> (Self, Option<V>) {
        let mut replaced = None;
        let root = ins(&self.root, key, value, &mut replaced);
        // Blacken the root.
        let root = root.map(|n| {
            if n.color == Red {
                Arc::new(Node {
                    color: Black,
                    left: n.left.clone(),
                    key: n.key.clone(),
                    value: n.value.clone(),
                    right: n.right.clone(),
                })
            } else {
                n
            }
        });
        let len = if replaced.is_some() {
            self.len
        } else {
            self.len + 1
        };
        (PMap { root, len }, replaced)
    }

    /// Removes `key`; returns the new map and the removed value, if the
    /// key was present. Removing an absent key returns a clone of
    /// `self` untouched.
    #[must_use]
    pub fn remove(&self, key: &K) -> (Self, Option<V>) {
        if !self.contains(key) {
            return (self.clone(), None);
        }
        let mut removed = None;
        let root = del(&self.root, key, &mut removed);
        debug_assert!(removed.is_some());
        // Blacken the root.
        let root = root.map(|n| {
            if n.color == Red {
                Arc::new(Node {
                    color: Black,
                    left: n.left.clone(),
                    key: n.key.clone(),
                    value: n.value.clone(),
                    right: n.right.clone(),
                })
            } else {
                n
            }
        });
        (
            PMap {
                root,
                len: self.len - 1,
            },
            removed,
        )
    }

    /// In-order `(key, value)` pairs.
    #[must_use]
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<K: Clone, V: Clone>(link: &Link<K, V>, out: &mut Vec<(K, V)>) {
            if let Some(n) = link {
                walk(&n.left, out);
                out.push((n.key.clone(), n.value.clone()));
                walk(&n.right, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// In-order keys.
    #[must_use]
    pub fn keys(&self) -> Vec<K> {
        self.entries().into_iter().map(|(k, _)| k).collect()
    }

    /// Verifies the red-black invariants and the BST ordering; returns
    /// the tree's black height or a description of the violation.
    ///
    /// # Errors
    /// Describes the first violated invariant.
    pub fn check_invariants(&self) -> Result<usize, String> {
        if color_of(&self.root) == Red {
            return Err("root is red".into());
        }
        fn walk<K: Ord, V>(link: &Link<K, V>) -> Result<usize, String> {
            match link {
                None => Ok(1),
                Some(n) => {
                    if n.color == Red && (color_of(&n.left) == Red || color_of(&n.right) == Red) {
                        return Err("red node with red child".into());
                    }
                    if let Some(l) = &n.left {
                        if l.key >= n.key {
                            return Err("BST order violated (left)".into());
                        }
                    }
                    if let Some(r) = &n.right {
                        if r.key <= n.key {
                            return Err("BST order violated (right)".into());
                        }
                    }
                    let hl = walk(&n.left)?;
                    let hr = walk(&n.right)?;
                    if hl != hr {
                        return Err(format!("black height mismatch: {hl} vs {hr}"));
                    }
                    Ok(hl + usize::from(n.color == Black))
                }
            }
        }
        let h = walk(&self.root)?;
        let counted = count(&self.root);
        if counted != self.len {
            return Err(format!("len {} but counted {}", self.len, counted));
        }
        Ok(h)
    }
}

fn count<K, V>(link: &Link<K, V>) -> usize {
    match link {
        None => 0,
        Some(n) => 1 + count(&n.left) + count(&n.right),
    }
}

// --- Okasaki insertion ---------------------------------------------------

fn ins<K: Ord + Clone, V: Clone>(
    link: &Link<K, V>,
    key: K,
    value: V,
    replaced: &mut Option<V>,
) -> Link<K, V> {
    match link {
        None => node(Red, None, key, value, None),
        Some(n) => match key.cmp(&n.key) {
            Ord_::Less => balance(
                n.color,
                ins(&n.left, key, value, replaced),
                n.key.clone(),
                n.value.clone(),
                n.right.clone(),
            ),
            Ord_::Greater => balance(
                n.color,
                n.left.clone(),
                n.key.clone(),
                n.value.clone(),
                ins(&n.right, key, value, replaced),
            ),
            Ord_::Equal => {
                *replaced = Some(n.value.clone());
                node(n.color, n.left.clone(), key, value, n.right.clone())
            }
        },
    }
}

/// Okasaki's four-case rotation. Only black parents rebalance; red
/// parents are rebuilt verbatim (the red-red violation, if any, is
/// resolved one level up).
fn balance<K: Clone, V: Clone>(
    color: Color,
    left: Link<K, V>,
    key: K,
    value: V,
    right: Link<K, V>,
) -> Link<K, V> {
    if color == Black {
        // Case 1: left child red with red left grandchild.
        if let Some(l) = &left {
            if l.color == Red {
                if let Some(ll) = &l.left {
                    if ll.color == Red {
                        return node(
                            Red,
                            node(
                                Black,
                                ll.left.clone(),
                                ll.key.clone(),
                                ll.value.clone(),
                                ll.right.clone(),
                            ),
                            l.key.clone(),
                            l.value.clone(),
                            node(Black, l.right.clone(), key, value, right),
                        );
                    }
                }
                // Case 2: left child red with red right grandchild.
                if let Some(lr) = &l.right {
                    if lr.color == Red {
                        return node(
                            Red,
                            node(
                                Black,
                                l.left.clone(),
                                l.key.clone(),
                                l.value.clone(),
                                lr.left.clone(),
                            ),
                            lr.key.clone(),
                            lr.value.clone(),
                            node(Black, lr.right.clone(), key, value, right),
                        );
                    }
                }
            }
        }
        if let Some(r) = &right {
            if r.color == Red {
                // Case 3: right child red with red left grandchild.
                if let Some(rl) = &r.left {
                    if rl.color == Red {
                        return node(
                            Red,
                            node(Black, left, key, value, rl.left.clone()),
                            rl.key.clone(),
                            rl.value.clone(),
                            node(
                                Black,
                                rl.right.clone(),
                                r.key.clone(),
                                r.value.clone(),
                                r.right.clone(),
                            ),
                        );
                    }
                }
                // Case 4: right child red with red right grandchild.
                if let Some(rr) = &r.right {
                    if rr.color == Red {
                        return node(
                            Red,
                            node(Black, left, key, value, r.left.clone()),
                            r.key.clone(),
                            r.value.clone(),
                            node(
                                Black,
                                rr.left.clone(),
                                rr.key.clone(),
                                rr.value.clone(),
                                rr.right.clone(),
                            ),
                        );
                    }
                }
            }
        }
    }
    node(color, left, key, value, right)
}

// --- Kahrs deletion -------------------------------------------------------

/// `del` returns a tree that may have a red root (blackened by the
/// caller) and, when the input subtree root was black, may be "short"
/// (black height reduced by one) — the `bal_left`/`bal_right` helpers
/// repair shortness on the way up, exactly as in Kahrs' Haskell.
fn del<K: Ord + Clone, V: Clone>(
    link: &Link<K, V>,
    key: &K,
    removed: &mut Option<V>,
) -> Link<K, V> {
    match link {
        None => None,
        Some(n) => match key.cmp(&n.key) {
            Ord_::Less => del_left(n, key, removed),
            Ord_::Greater => del_right(n, key, removed),
            Ord_::Equal => {
                *removed = Some(n.value.clone());
                fuse(&n.left, &n.right)
            }
        },
    }
}

fn del_left<K: Ord + Clone, V: Clone>(
    n: &Node<K, V>,
    key: &K,
    removed: &mut Option<V>,
) -> Link<K, V> {
    let new_left = del(&n.left, key, removed);
    if color_of(&n.left) == Black && n.left.is_some() {
        bal_left(new_left, n.key.clone(), n.value.clone(), &n.right)
    } else {
        node(
            Red,
            new_left,
            n.key.clone(),
            n.value.clone(),
            n.right.clone(),
        )
    }
}

fn del_right<K: Ord + Clone, V: Clone>(
    n: &Node<K, V>,
    key: &K,
    removed: &mut Option<V>,
) -> Link<K, V> {
    let new_right = del(&n.right, key, removed);
    if color_of(&n.right) == Black && n.right.is_some() {
        bal_right(&n.left, n.key.clone(), n.value.clone(), new_right)
    } else {
        node(
            Red,
            n.left.clone(),
            n.key.clone(),
            n.value.clone(),
            new_right,
        )
    }
}

/// Makes a black node red (Kahrs' `sub1`). Precondition: `link` is a
/// black non-empty node.
fn redden<K: Clone, V: Clone>(link: &Link<K, V>) -> Link<K, V> {
    let n = link.as_ref().expect("redden: empty");
    debug_assert_eq!(n.color, Black, "redden: node not black");
    node(
        Red,
        n.left.clone(),
        n.key.clone(),
        n.value.clone(),
        n.right.clone(),
    )
}

/// `balance` specialised to a black root (Kahrs' standalone `balance`).
fn balance_b<K: Clone, V: Clone>(
    left: Link<K, V>,
    key: K,
    value: V,
    right: Link<K, V>,
) -> Link<K, V> {
    balance(Black, left, key, value, right)
}

/// Repairs a left subtree that lost one unit of black height.
fn bal_left<K: Clone, V: Clone>(
    left: Link<K, V>,
    key: K,
    value: V,
    right: &Link<K, V>,
) -> Link<K, V> {
    // Case 1: short subtree has a red root — paint it black.
    if color_of(&left) == Red {
        let l = left.as_ref().unwrap();
        return node(
            Red,
            node(
                Black,
                l.left.clone(),
                l.key.clone(),
                l.value.clone(),
                l.right.clone(),
            ),
            key,
            value,
            right.clone(),
        );
    }
    let r = right
        .as_ref()
        .expect("bal_left: right sibling cannot be empty");
    match r.color {
        // Case 2: black sibling — merge and rebalance.
        Black => balance_b(left, key, value, redden(right)),
        // Case 3: red sibling with black children.
        Red => {
            let rl = r
                .left
                .as_ref()
                .expect("bal_left: red sibling must have children");
            debug_assert_eq!(rl.color, Black);
            node(
                Red,
                node(Black, left, key, value, rl.left.clone()),
                rl.key.clone(),
                rl.value.clone(),
                balance_b(
                    rl.right.clone(),
                    r.key.clone(),
                    r.value.clone(),
                    redden(&r.right),
                ),
            )
        }
    }
}

/// Mirror image of [`bal_left`].
fn bal_right<K: Clone, V: Clone>(
    left: &Link<K, V>,
    key: K,
    value: V,
    right: Link<K, V>,
) -> Link<K, V> {
    if color_of(&right) == Red {
        let r = right.as_ref().unwrap();
        return node(
            Red,
            left.clone(),
            key,
            value,
            node(
                Black,
                r.left.clone(),
                r.key.clone(),
                r.value.clone(),
                r.right.clone(),
            ),
        );
    }
    let l = left
        .as_ref()
        .expect("bal_right: left sibling cannot be empty");
    match l.color {
        Black => balance_b(redden(left), key, value, right),
        Red => {
            let lr = l
                .right
                .as_ref()
                .expect("bal_right: red sibling must have children");
            debug_assert_eq!(lr.color, Black);
            node(
                Red,
                balance_b(
                    redden(&l.left),
                    l.key.clone(),
                    l.value.clone(),
                    lr.left.clone(),
                ),
                lr.key.clone(),
                lr.value.clone(),
                node(Black, lr.right.clone(), key, value, right),
            )
        }
    }
}

/// Joins two subtrees of equal black height whose keys are ordered
/// (every key in `left` < every key in `right`) — Kahrs' `app`.
fn fuse<K: Clone, V: Clone>(left: &Link<K, V>, right: &Link<K, V>) -> Link<K, V> {
    match (left, right) {
        (None, _) => right.clone(),
        (_, None) => left.clone(),
        (Some(l), Some(r)) => match (l.color, r.color) {
            (Red, Red) => {
                let mid = fuse(&l.right, &r.left);
                if color_of(&mid) == Red {
                    let m = mid.as_ref().unwrap();
                    node(
                        Red,
                        node(
                            Red,
                            l.left.clone(),
                            l.key.clone(),
                            l.value.clone(),
                            m.left.clone(),
                        ),
                        m.key.clone(),
                        m.value.clone(),
                        node(
                            Red,
                            m.right.clone(),
                            r.key.clone(),
                            r.value.clone(),
                            r.right.clone(),
                        ),
                    )
                } else {
                    node(
                        Red,
                        l.left.clone(),
                        l.key.clone(),
                        l.value.clone(),
                        node(Red, mid, r.key.clone(), r.value.clone(), r.right.clone()),
                    )
                }
            }
            (Black, Black) => {
                let mid = fuse(&l.right, &r.left);
                if color_of(&mid) == Red {
                    let m = mid.as_ref().unwrap();
                    node(
                        Red,
                        node(
                            Black,
                            l.left.clone(),
                            l.key.clone(),
                            l.value.clone(),
                            m.left.clone(),
                        ),
                        m.key.clone(),
                        m.value.clone(),
                        node(
                            Black,
                            m.right.clone(),
                            r.key.clone(),
                            r.value.clone(),
                            r.right.clone(),
                        ),
                    )
                } else {
                    bal_left(
                        l.left.clone(),
                        l.key.clone(),
                        l.value.clone(),
                        &node(Black, mid, r.key.clone(), r.value.clone(), r.right.clone()),
                    )
                }
            }
            // Exactly one red: absorb it towards the join point.
            (_, Red) => node(
                Red,
                fuse(left, &r.left),
                r.key.clone(),
                r.value.clone(),
                r.right.clone(),
            ),
            (Red, _) => node(
                Red,
                l.left.clone(),
                l.key.clone(),
                l.value.clone(),
                fuse(&l.right, right),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn check<K: Ord + Clone + std::fmt::Debug, V: Clone>(m: &PMap<K, V>) {
        if let Err(e) = m.check_invariants() {
            panic!("invariant violated: {e}; keys={:?}", m.keys());
        }
    }

    #[test]
    fn empty_map() {
        let m: PMap<u32, u32> = PMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
        check(&m);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut m = PMap::new();
        for k in [5, 2, 8, 1, 9, 3, 7, 4, 6, 0] {
            m = m.insert(k, k * 10).0;
            check(&m);
        }
        assert_eq!(m.len(), 10);
        for k in 0..10 {
            assert_eq!(m.get(&k), Some(&(k * 10)));
        }
        assert_eq!(m.min(), Some((&0, &0)));
        assert_eq!(m.max(), Some((&9, &90)));
    }

    #[test]
    fn insert_replaces() {
        let m = PMap::new().insert(1, "a").0;
        let (m2, old) = m.insert(1, "b");
        assert_eq!(old, Some("a"));
        assert_eq!(m2.len(), 1);
        assert_eq!(m2.get(&1), Some(&"b"));
        // Persistence: the original still maps to "a".
        assert_eq!(m.get(&1), Some(&"a"));
    }

    #[test]
    fn ascending_and_descending_inserts_stay_balanced() {
        let mut up = PMap::new();
        let mut down = PMap::new();
        for k in 0..512 {
            up = up.insert(k, ()).0;
            down = down.insert(511 - k, ()).0;
        }
        check(&up);
        check(&down);
        // Balanced: black height of a 512-element RB tree is small.
        let h = up.check_invariants().unwrap();
        assert!(h <= 10, "black height {h} too large for 512 elements");
    }

    #[test]
    fn remove_missing_is_noop() {
        let m = PMap::new().insert(1, 1).0;
        let (m2, removed) = m.remove(&99);
        assert_eq!(removed, None);
        assert_eq!(m2.len(), 1);
        check(&m2);
    }

    #[test]
    fn remove_all_elements() {
        let mut m = PMap::new();
        for k in 0..128 {
            m = m.insert(k, k).0;
        }
        for k in 0..128 {
            let (next, removed) = m.remove(&k);
            assert_eq!(removed, Some(k), "key {k}");
            m = next;
            check(&m);
        }
        assert!(m.is_empty());
    }

    #[test]
    fn remove_in_random_order() {
        let keys: Vec<i64> = (0..200).map(|i| (i * 37) % 200).collect();
        let mut m = PMap::new();
        for &k in &keys {
            m = m.insert(k, k).0;
            check(&m);
        }
        let removal: Vec<i64> = (0..200).map(|i| (i * 73 + 11) % 200).collect();
        for &k in &removal {
            let (next, removed) = m.remove(&k);
            assert_eq!(removed, Some(k));
            m = next;
            check(&m);
        }
        assert!(m.is_empty());
    }

    #[test]
    fn entries_are_sorted() {
        let mut m = PMap::new();
        for k in [3, 1, 4, 1, 5, 9, 2, 6] {
            m = m.insert(k, ()).0;
        }
        let keys = m.keys();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn persistence_under_removal() {
        let mut versions = vec![PMap::new()];
        for k in 0..50 {
            let next = versions.last().unwrap().insert(k, k).0;
            versions.push(next);
        }
        // Each version i contains exactly the keys 0..i.
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(v.len(), i);
            for k in 0..50 {
                assert_eq!(v.contains(&k), (k as usize) < i);
            }
        }
    }

    #[test]
    fn matches_btreemap_mixed_ops() {
        // Deterministic pseudo-random op sequence cross-checked against
        // the standard library ordered map.
        let mut model = BTreeMap::new();
        let mut m = PMap::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for _ in 0..3000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 64) as i64;
            let op = (x >> 8) % 3;
            match op {
                0 | 1 => {
                    let v = (x >> 16) as i64;
                    let expected = model.insert(key, v);
                    let (next, got) = m.insert(key, v);
                    assert_eq!(got, expected);
                    m = next;
                }
                _ => {
                    let expected = model.remove(&key);
                    let (next, got) = m.remove(&key);
                    assert_eq!(got, expected);
                    m = next;
                }
            }
            assert_eq!(m.len(), model.len());
        }
        check(&m);
        let entries = m.entries();
        let expected: Vec<(i64, i64)> = model.into_iter().collect();
        assert_eq!(entries, expected);
    }

    #[test]
    fn large_tree_black_height_logarithmic() {
        let mut m = PMap::new();
        for k in 0..10_000 {
            m = m.insert(k, ()).0;
        }
        let h = m.check_invariants().unwrap();
        // 2*log2(10001) ≈ 26.6; black height is at most half the total
        // height, so ~14 is the loose ceiling.
        assert!(h <= 15, "black height {h}");
    }
}
