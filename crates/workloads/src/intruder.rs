//! Intruder — a port of the STAMP network-intrusion-detection benchmark
//! (Minh et al., IISWC '08), the paper's poorly scaling workload
//! (Fig. 1: throughput peaks at ~7 threads and collapses beyond).
//!
//! The pipeline, per STAMP:
//!
//! 1. **Capture** — pop a packet from the shared packet queue
//!    (transaction 1).
//! 2. **Reassembly** — insert the fragment into the shared session map
//!    (flow id → received fragments); when the flow completes, remove it
//!    and hand the assembled payload on (transaction 2).
//! 3. **Detection** — scan the payload for attack signatures (pure
//!    computation, no shared state).
//!
//! The shared queue and session map make phases 1–2 conflict-heavy,
//! which is what limits scalability.
//!
//! **Substitution note (DESIGN.md):** STAMP pre-generates the whole
//! packet trace and the run ends when the queue drains; an online
//! parallelism tuner needs *sustained* throughput, so here the worker
//! that finds the queue empty refills it with a freshly generated batch
//! (same fragmentation/shuffle/attack-injection scheme, deterministic
//! per seed). Everything else follows STAMP.

use rubic_sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rubic_runtime::Workload;
use rubic_stm::{Stm, TVar};

use crate::mapapi::{MapFamily, SnapshotFamily, TOrdMap};
use crate::pqueue::PQueue;

/// The attack strings injected into flows and searched by the detector
/// (STAMP uses a dictionary; a fixed signature set preserves the
/// compute/communication ratio).
pub const SIGNATURES: [&str; 4] = ["ATTACK-XSS", "ATTACK-SQLI", "ATTACK-OVERFLOW", "ATTACK-RCE"];

/// One fragment of a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Flow this fragment belongs to.
    pub flow_id: u64,
    /// Fragment index within the flow.
    pub fragment_id: u32,
    /// Total fragments in the flow.
    pub num_fragments: u32,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// Reassembly buffer for one in-progress flow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowBuffer {
    /// Total fragments expected.
    pub num_fragments: u32,
    /// Received fragments as `(fragment_id, data)`.
    pub received: Vec<(u32, Vec<u8>)>,
}

impl FlowBuffer {
    /// True when every fragment has arrived.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.num_fragments > 0 && self.received.len() as u32 == self.num_fragments
    }

    /// Concatenates fragments in order.
    #[must_use]
    pub fn assemble(&self) -> Vec<u8> {
        let mut frags = self.received.clone();
        frags.sort_by_key(|(id, _)| *id);
        frags.into_iter().flat_map(|(_, d)| d).collect()
    }
}

/// Intruder parameters (STAMP flag names in brackets).
#[derive(Debug, Clone, Copy)]
pub struct IntruderConfig {
    /// Flows generated per queue refill (STAMP `-n` is the total flow
    /// count; here it is the refill batch).
    pub flows_per_batch: u32,
    /// Maximum fragments per flow (STAMP fragments flows randomly).
    pub max_fragments: u32,
    /// Percentage of flows carrying an attack (`-a`).
    pub attack_pct: u32,
    /// Bytes per flow payload (`-l`).
    pub payload_len: usize,
    /// Base RNG seed (`-s`).
    pub seed: u64,
}

impl IntruderConfig {
    /// STAMP-ish defaults scaled for throughput runs: 64-flow batches,
    /// up to 8 fragments, 10% attacks, 128-byte payloads.
    #[must_use]
    pub fn paper() -> Self {
        IntruderConfig {
            flows_per_batch: 64,
            max_fragments: 8,
            attack_pct: 10,
            payload_len: 128,
            seed: 0x5EED_0005,
        }
    }

    /// Small configuration for fast tests.
    #[must_use]
    pub fn small() -> Self {
        IntruderConfig {
            flows_per_batch: 8,
            max_fragments: 4,
            attack_pct: 25,
            payload_len: 32,
            seed: 0x5EED_0006,
        }
    }
}

/// Deterministic flow/packet generator (the traffic source STAMP builds
/// up front).
pub struct TrafficGenerator {
    rng: SmallRng,
    next_flow_id: u64,
    cfg: IntruderConfig,
}

impl TrafficGenerator {
    /// Creates a generator; `stream` decorrelates independent sources
    /// (e.g. per worker).
    #[must_use]
    pub fn new(cfg: IntruderConfig, stream: u64) -> Self {
        TrafficGenerator {
            rng: SmallRng::seed_from_u64(cfg.seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F)),
            // Partition the flow-id space by stream so concurrent
            // refills never collide on flow ids.
            next_flow_id: stream << 40,
            cfg,
        }
    }

    /// Generates one batch of flows, fragments them, shuffles all the
    /// fragments together (STAMP interleaves flows in the input trace),
    /// and returns the packets plus the number of injected attacks.
    pub fn generate_batch(&mut self) -> (Vec<Packet>, u32) {
        let mut packets = Vec::new();
        let mut attacks = 0u32;
        for _ in 0..self.cfg.flows_per_batch {
            let flow_id = self.next_flow_id;
            self.next_flow_id += 1;
            let mut payload: Vec<u8> = (0..self.cfg.payload_len)
                .map(|_| self.rng.gen_range(b'a'..=b'z'))
                .collect();
            if self.rng.gen_range(0..100) < self.cfg.attack_pct {
                let sig = SIGNATURES[self.rng.gen_range(0..SIGNATURES.len())].as_bytes();
                let pos = self
                    .rng
                    .gen_range(0..=payload.len().saturating_sub(sig.len()));
                payload[pos..pos + sig.len()].copy_from_slice(sig);
                attacks += 1;
            }
            let n_frags = self.rng.gen_range(1..=self.cfg.max_fragments);
            let chunk = payload.len().div_ceil(n_frags as usize).max(1);
            for (i, piece) in payload.chunks(chunk).enumerate() {
                packets.push(Packet {
                    flow_id,
                    fragment_id: i as u32,
                    num_fragments: payload.chunks(chunk).count() as u32,
                    data: piece.to_vec(),
                });
            }
        }
        packets.shuffle(&mut self.rng);
        (packets, attacks)
    }
}

/// Scans an assembled payload for attack signatures (phase 3; pure).
#[must_use]
pub fn detect(payload: &[u8]) -> bool {
    SIGNATURES.iter().any(|sig| {
        let s = sig.as_bytes();
        payload.windows(s.len()).any(|w| w == s)
    })
}

/// The Intruder workload: shared packet queue + session map + detector,
/// generic over the session-map structure (the stmbench `structure`
/// axis: one snapshot cell vs a per-node B-tree).
pub struct IntruderWorkloadOn<F: MapFamily> {
    queue: TVar<PQueue<Packet>>,
    sessions: F::Map<u64, FlowBuffer>,
    cfg: IntruderConfig,
    stm: Stm,
    attacks_found: AtomicU64,
    flows_completed: AtomicU64,
}

/// The historical default: a snapshot-cell session map.
pub type IntruderWorkload = IntruderWorkloadOn<SnapshotFamily>;

impl<F: MapFamily> IntruderWorkloadOn<F> {
    /// Creates the workload with an initially empty queue (the first
    /// tasks trigger a refill).
    #[must_use]
    pub fn new(cfg: IntruderConfig, stm: Stm) -> Self {
        IntruderWorkloadOn {
            queue: TVar::new(PQueue::new()),
            sessions: F::new_labelled("intruder.sessions"),
            cfg,
            stm,
            attacks_found: AtomicU64::new(0),
            flows_completed: AtomicU64::new(0),
        }
    }

    /// The STM runtime.
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// Attacks detected so far.
    #[must_use]
    pub fn attacks_found(&self) -> u64 {
        self.attacks_found.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Flows fully reassembled so far.
    #[must_use]
    pub fn flows_completed(&self) -> u64 {
        self.flows_completed.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// In-progress (incomplete) sessions right now.
    #[must_use]
    pub fn open_sessions(&self) -> usize {
        self.sessions.snapshot_entries().len()
    }

    /// Phase 1: capture. Pops one packet; on an empty queue, refills it
    /// with a batch from `gen` first.
    fn capture(&self, gen: &mut TrafficGenerator) -> Packet {
        loop {
            let popped = self.stm.atomically(|tx| {
                let q = tx.read(&self.queue)?;
                let (next, item) = q.pop();
                if item.is_some() {
                    tx.write(&self.queue, next)?;
                }
                Ok(item)
            });
            if let Some(p) = popped {
                return p;
            }
            // Refill (generation happens outside the transaction).
            let (batch, _) = gen.generate_batch();
            self.stm.atomically(|tx| {
                let mut q = tx.read(&self.queue)?;
                for p in &batch {
                    q = q.push(p.clone());
                }
                tx.write(&self.queue, q)
            });
        }
    }

    /// Phase 2: reassembly. Returns the assembled payload when this
    /// fragment completes its flow.
    fn reassemble(&self, packet: &Packet) -> Option<Vec<u8>> {
        self.stm.atomically(|tx| {
            let mut buf = self.sessions.get(tx, &packet.flow_id)?.unwrap_or_default();
            buf.num_fragments = packet.num_fragments;
            if !buf.received.iter().any(|(id, _)| *id == packet.fragment_id) {
                buf.received.push((packet.fragment_id, packet.data.clone()));
            }
            if buf.complete() {
                self.sessions.remove(tx, &packet.flow_id)?;
                Ok(Some(buf.assemble()))
            } else {
                self.sessions.insert(tx, packet.flow_id, buf)?;
                Ok(None)
            }
        })
    }
}

/// Per-worker state: a traffic source stream.
pub struct IntruderWorkerState {
    gen: TrafficGenerator,
}

impl<F: MapFamily> Workload for IntruderWorkloadOn<F> {
    type WorkerState = IntruderWorkerState;

    fn init_worker(&self, tid: usize) -> IntruderWorkerState {
        IntruderWorkerState {
            gen: TrafficGenerator::new(self.cfg, tid as u64 + 1),
        }
    }

    fn run_task(&self, state: &mut IntruderWorkerState) {
        let packet = self.capture(&mut state.gen);
        // ordering: stat counters — reassembly's transactional commit
        // is the synchronisation point; these only feed reports.
        if let Some(payload) = self.reassemble(&packet) {
            self.flows_completed.fetch_add(1, Ordering::Relaxed);
            if detect(&payload) {
                self.attacks_found.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn drain_aborts(&self, _state: &mut IntruderWorkerState) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_fragments_cover_payload() {
        let mut gen = TrafficGenerator::new(IntruderConfig::small(), 1);
        let (packets, _) = gen.generate_batch();
        assert!(!packets.is_empty());
        // Group by flow and reassemble each: total bytes must equal the
        // configured payload length.
        let mut by_flow: std::collections::HashMap<u64, FlowBuffer> =
            std::collections::HashMap::new();
        for p in &packets {
            let buf = by_flow.entry(p.flow_id).or_default();
            buf.num_fragments = p.num_fragments;
            buf.received.push((p.fragment_id, p.data.clone()));
        }
        assert_eq!(by_flow.len(), 8);
        for buf in by_flow.values() {
            assert!(buf.complete());
            assert_eq!(buf.assemble().len(), 32);
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = TrafficGenerator::new(IntruderConfig::small(), 3);
        let mut b = TrafficGenerator::new(IntruderConfig::small(), 3);
        assert_eq!(a.generate_batch().0, b.generate_batch().0);
        let mut c = TrafficGenerator::new(IntruderConfig::small(), 4);
        assert_ne!(a.generate_batch().0, c.generate_batch().0);
    }

    #[test]
    fn detect_finds_signatures() {
        assert!(detect(b"xxxxATTACK-SQLIyyyy"));
        assert!(detect(b"ATTACK-RCE"));
        assert!(!detect(b"perfectly innocent traffic"));
        assert!(!detect(b""));
    }

    #[test]
    fn flows_complete_and_attacks_are_found() {
        let w = IntruderWorkload::new(IntruderConfig::small(), Stm::default());
        let mut state = w.init_worker(0);
        // Process enough tasks to complete several batches of flows.
        for _ in 0..500 {
            w.run_task(&mut state);
        }
        assert!(w.flows_completed() > 0, "no flow completed");
        // 25% attack rate over dozens of flows: overwhelmingly likely
        // at least one detection.
        assert!(w.attacks_found() > 0, "no attack detected");
    }

    #[test]
    fn sessions_drain_at_batch_boundaries() {
        let w = IntruderWorkload::new(IntruderConfig::small(), Stm::default());
        let mut state = w.init_worker(0);
        // One batch of 8 flows fragments into at most 8*4 = 32 packets;
        // processing exactly that many empties both queue and sessions.
        for _ in 0..2000 {
            w.run_task(&mut state);
        }
        // Whatever is open is bounded by the flows of the current batch.
        assert!(
            w.open_sessions() <= 8,
            "sessions leak: {}",
            w.open_sessions()
        );
    }

    #[test]
    fn duplicate_fragments_are_idempotent() {
        let w = IntruderWorkload::new(IntruderConfig::small(), Stm::default());
        let p = Packet {
            flow_id: 999,
            fragment_id: 0,
            num_fragments: 2,
            data: b"abc".to_vec(),
        };
        assert_eq!(w.reassemble(&p), None);
        assert_eq!(
            w.reassemble(&p),
            None,
            "duplicate must not complete the flow"
        );
        let p2 = Packet {
            flow_id: 999,
            fragment_id: 1,
            num_fragments: 2,
            data: b"def".to_vec(),
        };
        assert_eq!(w.reassemble(&p2), Some(b"abcdef".to_vec()));
        assert_eq!(w.open_sessions(), 0);
    }

    #[test]
    fn btree_backed_sessions_behave_identically() {
        use crate::mapapi::BTreeFamily;
        let w = IntruderWorkloadOn::<BTreeFamily>::new(IntruderConfig::small(), Stm::default());
        let mut state = w.init_worker(0);
        for _ in 0..500 {
            w.run_task(&mut state);
        }
        assert!(w.flows_completed() > 0, "no flow completed");
        assert!(w.open_sessions() <= 8, "sessions leak");
    }

    #[test]
    fn distinct_worker_streams_use_disjoint_flow_ids() {
        let mut a = TrafficGenerator::new(IntruderConfig::small(), 1);
        let mut b = TrafficGenerator::new(IntruderConfig::small(), 2);
        let ids_a: std::collections::HashSet<u64> =
            a.generate_batch().0.iter().map(|p| p.flow_id).collect();
        let ids_b: std::collections::HashSet<u64> =
            b.generate_batch().0.iter().map(|p| p.flow_id).collect();
        assert!(ids_a.is_disjoint(&ids_b));
    }
}
