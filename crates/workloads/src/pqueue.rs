//! A persistent FIFO queue (Okasaki's two-list "banker's queue",
//! rebalanced eagerly).
//!
//! Used for the Intruder workload's shared packet queue: stored in one
//! `TVar`, so a transactional pop is "read snapshot → functional pop →
//! write snapshot" with O(1) amortised work and full structural sharing,
//! instead of cloning a `VecDeque` on every pop.

use std::sync::Arc;

/// Persistent cons list (`None` in the wrapping `Option` is nil).
#[derive(Debug)]
struct ListNode<T>(T, List<T>);

#[derive(Debug)]
struct List<T>(Option<Arc<ListNode<T>>>);

impl<T> Clone for List<T> {
    fn clone(&self) -> Self {
        List(self.0.clone())
    }
}

impl<T: Clone> List<T> {
    fn nil() -> Self {
        List(None)
    }

    fn cons(head: T, tail: List<T>) -> Self {
        List(Some(Arc::new(ListNode(head, tail))))
    }

    fn head_tail(&self) -> Option<(&T, &List<T>)> {
        self.0.as_deref().map(|ListNode(h, t)| (h, t))
    }

    fn rev(&self) -> List<T> {
        let mut out = List::nil();
        let mut cur = self.clone();
        while let Some((h, t)) = cur.head_tail().map(|(h, t)| (h.clone(), t.clone())) {
            out = List::cons(h, out);
            cur = t;
        }
        out
    }
}

/// A persistent FIFO queue with O(1) amortised push/pop and O(1) clone.
///
/// ```
/// use rubic_workloads::pqueue::PQueue;
/// let q = PQueue::new().push(1).push(2).push(3);
/// let (q, x) = q.pop();
/// assert_eq!(x, Some(1));
/// let (q, x) = q.pop();
/// assert_eq!(x, Some(2));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug)]
pub struct PQueue<T> {
    front: List<T>,
    back: List<T>,
    len: usize,
}

impl<T> Clone for PQueue<T> {
    fn clone(&self) -> Self {
        PQueue {
            front: self.front.clone(),
            back: self.back.clone(),
            len: self.len,
        }
    }
}

impl<T: Clone> Default for PQueue<T> {
    fn default() -> Self {
        PQueue::new()
    }
}

impl<T: Clone> PQueue<T> {
    /// The empty queue.
    #[must_use]
    pub fn new() -> Self {
        PQueue {
            front: List::nil(),
            back: List::nil(),
            len: 0,
        }
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `item` at the back.
    #[must_use]
    pub fn push(&self, item: T) -> Self {
        PQueue {
            front: self.front.clone(),
            back: List::cons(item, self.back.clone()),
            len: self.len + 1,
        }
    }

    /// Dequeues from the front; returns the new queue and the item (or
    /// `None` when empty, in which case the queue is returned
    /// unchanged).
    #[must_use]
    pub fn pop(&self) -> (Self, Option<T>) {
        if let Some((h, t)) = self.front.head_tail() {
            return (
                PQueue {
                    front: t.clone(),
                    back: self.back.clone(),
                    len: self.len - 1,
                },
                Some(h.clone()),
            );
        }
        // Front exhausted: reverse the back into the front.
        let reversed = self.back.rev();
        match reversed.head_tail() {
            None => (self.clone(), None),
            Some((h, t)) => (
                PQueue {
                    front: t.clone(),
                    back: List::nil(),
                    len: self.len - 1,
                },
                Some(h.clone()),
            ),
        }
    }

    /// Drains into a `Vec` in FIFO order (diagnostics/tests).
    #[must_use]
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        let mut q = self.clone();
        loop {
            let (next, item) = q.pop();
            match item {
                Some(x) => out.push(x),
                None => break,
            }
            q = next;
        }
        out
    }
}

impl<T: Clone> FromIterator<T> for PQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut q = PQueue::new();
        for x in iter {
            q = q.push(x);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q: PQueue<u32> = (0..10).collect();
        assert_eq!(q.to_vec(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_empty() {
        let q: PQueue<u32> = PQueue::new();
        let (q2, x) = q.pop();
        assert_eq!(x, None);
        assert_eq!(q2.len(), 0);
    }

    #[test]
    fn len_tracks_operations() {
        let q = PQueue::new().push('a').push('b');
        assert_eq!(q.len(), 2);
        let (q, _) = q.pop();
        assert_eq!(q.len(), 1);
        let (q, _) = q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn persistence() {
        let q1 = PQueue::new().push(1).push(2);
        let (q2, _) = q1.pop();
        assert_eq!(q1.len(), 2, "original untouched");
        assert_eq!(q2.len(), 1);
        assert_eq!(q1.to_vec(), vec![1, 2]);
        assert_eq!(q2.to_vec(), vec![2]);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = PQueue::new();
        let mut model = std::collections::VecDeque::new();
        let mut x: u64 = 0xDEAD_BEEF;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !x.is_multiple_of(3) {
                q = q.push(x);
                model.push_back(x);
            } else {
                let (next, got) = q.pop();
                q = next;
                assert_eq!(got, model.pop_front());
            }
            assert_eq!(q.len(), model.len());
        }
        assert_eq!(q.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn long_reverse_is_correct() {
        // Force the rebalance path with a long back list.
        let mut q = PQueue::new();
        for i in 0..1000 {
            q = q.push(i);
        }
        let (q, first) = q.pop();
        assert_eq!(first, Some(0));
        assert_eq!(q.len(), 999);
        assert_eq!(q.to_vec()[0], 1);
    }
}
