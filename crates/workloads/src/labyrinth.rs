//! Labyrinth — a port of the STAMP maze-routing benchmark (Lee's
//! algorithm), an extension beyond the paper's three evaluated
//! workloads (STAMP is the suite the paper draws from).
//!
//! Threads route source→destination pairs through a shared grid:
//! each task plans a shortest path over a *snapshot* of the grid
//! (breadth-first search, pure computation) and then transactionally
//! claims the path's cells. Two concurrently planned paths that share
//! a cell conflict; the loser replans against the updated grid —
//! exactly STAMP's transaction pattern (plan privately, commit
//! globally). Long transactions + large write footprints make this the
//! coarse-conflict end of the workload spectrum.

use rubic_sync::atomic::{AtomicU64, Ordering};
use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rubic_runtime::Workload;
use rubic_stm::{Stm, TVar};

use crate::pers::PMap;

/// Grid coordinates packed as `y * width + x`.
pub type Cell = u32;

/// The routing grid: claimed cells map to the id of the route that owns
/// them. Stored as one persistent map snapshot per STAMP's
/// plan-then-claim discipline (see DESIGN.md §2b).
pub struct Maze {
    width: u32,
    height: u32,
    grid: TVar<PMap<Cell, u64>>,
}

impl Maze {
    /// Creates an empty grid.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "degenerate maze");
        Maze {
            width,
            height,
            grid: TVar::new(PMap::new()),
        }
    }

    /// Grid width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    fn pack(&self, x: u32, y: u32) -> Cell {
        y * self.width + x
    }

    /// Breadth-first shortest path over `claimed`, avoiding owned cells
    /// (endpoints included). Pure: operates on a snapshot.
    fn plan(&self, claimed: &PMap<Cell, u64>, src: Cell, dst: Cell) -> Option<Vec<Cell>> {
        if claimed.contains(&src) || claimed.contains(&dst) {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let n = (self.width * self.height) as usize;
        let mut prev: Vec<Cell> = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        prev[src as usize] = src;
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            let (x, y) = (cur % self.width, cur / self.width);
            let neighbours = [
                (x.wrapping_sub(1), y),
                (x + 1, y),
                (x, y.wrapping_sub(1)),
                (x, y + 1),
            ];
            for (nx, ny) in neighbours {
                if nx >= self.width || ny >= self.height {
                    continue;
                }
                let next = self.pack(nx, ny);
                if prev[next as usize] != u32::MAX || claimed.contains(&next) {
                    continue;
                }
                prev[next as usize] = cur;
                if next == dst {
                    // Reconstruct.
                    let mut path = vec![dst];
                    let mut at = dst;
                    while at != src {
                        at = prev[at as usize];
                        path.push(at);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Plans and transactionally claims a route. Returns the claimed
    /// path, or `None` if no path exists in the current grid.
    ///
    /// The plan runs on the transaction's snapshot; the claim writes the
    /// updated grid. A concurrent claim that invalidates the snapshot
    /// aborts the transaction and the whole plan re-runs — the STAMP
    /// pattern.
    pub fn route(&self, stm: &Stm, route_id: u64, src: Cell, dst: Cell) -> Option<Vec<Cell>> {
        stm.atomically(|tx| {
            let snapshot = tx.read(&self.grid)?;
            let Some(path) = self.plan(&snapshot, src, dst) else {
                return Ok(None);
            };
            let mut next = snapshot;
            for &cell in &path {
                next = next.insert(cell, route_id).0;
            }
            tx.write(&self.grid, next)?;
            Ok(Some(path))
        })
    }

    /// Releases every cell owned by `route_id` (used to keep the grid
    /// from saturating in sustained-throughput runs).
    pub fn release(&self, stm: &Stm, route_id: u64, path: &[Cell]) {
        stm.atomically(|tx| {
            let mut grid = tx.read(&self.grid)?;
            for cell in path {
                if grid.get(cell) == Some(&route_id) {
                    grid = grid.remove(cell).0;
                }
            }
            tx.write(&self.grid, grid)?;
            Ok(())
        });
    }

    /// Number of currently claimed cells.
    #[must_use]
    pub fn claimed_cells(&self) -> usize {
        self.grid.snapshot().len()
    }

    /// Consistency check: every cell of every live path is owned by the
    /// claiming route and paths are 4-connected.
    #[must_use]
    pub fn verify_path(&self, route_id: u64, path: &[Cell]) -> bool {
        let grid = self.grid.snapshot();
        if !path.iter().all(|c| grid.get(c) == Some(&route_id)) {
            return false;
        }
        path.windows(2).all(|w| {
            let (ax, ay) = (w[0] % self.width, w[0] / self.width);
            let (bx, by) = (w[1] % self.width, w[1] / self.width);
            ax.abs_diff(bx) + ay.abs_diff(by) == 1
        })
    }
}

/// Labyrinth parameters.
#[derive(Debug, Clone, Copy)]
pub struct LabyrinthConfig {
    /// Grid width (STAMP `-x`).
    pub width: u32,
    /// Grid height (STAMP `-y`).
    pub height: u32,
    /// A route is released after this many subsequent routes by the
    /// same worker (keeps steady-state occupancy bounded for sustained
    /// throughput; STAMP instead routes a fixed input list once).
    pub live_routes_per_worker: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LabyrinthConfig {
    /// A 32×32 grid with 4 live routes per worker.
    #[must_use]
    pub fn small() -> Self {
        LabyrinthConfig {
            width: 32,
            height: 32,
            live_routes_per_worker: 4,
            seed: 0x5EED_0007,
        }
    }
}

/// The Labyrinth workload: route random pairs, recycling old routes.
pub struct LabyrinthWorkload {
    maze: Maze,
    cfg: LabyrinthConfig,
    stm: Stm,
    routed: AtomicU64,
    failed: AtomicU64,
    next_route_id: AtomicU64,
}

impl LabyrinthWorkload {
    /// Creates the workload over an empty maze.
    #[must_use]
    pub fn new(cfg: LabyrinthConfig, stm: Stm) -> Self {
        LabyrinthWorkload {
            maze: Maze::new(cfg.width, cfg.height),
            cfg,
            stm,
            routed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            next_route_id: AtomicU64::new(1),
        }
    }

    /// The maze (inspection).
    #[must_use]
    pub fn maze(&self) -> &Maze {
        &self.maze
    }

    /// The STM runtime.
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// Successfully claimed routes so far.
    #[must_use]
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Route attempts that found no path.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed) // ordering: monitoring read
    }
}

/// Per-worker state: RNG plus the worker's window of live routes.
pub struct LabyrinthWorkerState {
    rng: SmallRng,
    live: VecDeque<(u64, Vec<Cell>)>,
}

impl Workload for LabyrinthWorkload {
    type WorkerState = LabyrinthWorkerState;

    fn init_worker(&self, tid: usize) -> LabyrinthWorkerState {
        LabyrinthWorkerState {
            rng: SmallRng::seed_from_u64(
                self.cfg.seed ^ (tid as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7),
            ),
            live: VecDeque::new(),
        }
    }

    fn run_task(&self, state: &mut LabyrinthWorkerState) {
        // Recycle the oldest route once the window is full.
        if state.live.len() >= self.cfg.live_routes_per_worker {
            if let Some((id, path)) = state.live.pop_front() {
                self.maze.release(&self.stm, id, &path);
            }
        }
        let src_x = state.rng.gen_range(0..self.cfg.width);
        let src_y = state.rng.gen_range(0..self.cfg.height);
        let dst_x = state.rng.gen_range(0..self.cfg.width);
        let dst_y = state.rng.gen_range(0..self.cfg.height);
        let src = src_y * self.cfg.width + src_x;
        let dst = dst_y * self.cfg.width + dst_x;
        // ordering: route ids only need uniqueness, which fetch_add
        // guarantees at any ordering.
        let id = self.next_route_id.fetch_add(1, Ordering::Relaxed);
        match self.maze.route(&self.stm, id, src, dst) {
            Some(path) => {
                self.routed.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
                state.live.push_back((id, path));
            }
            None => {
                self.failed.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
            }
        }
    }

    fn drain_aborts(&self, _state: &mut LabyrinthWorkerState) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_route() {
        let stm = Stm::default();
        let maze = Maze::new(8, 8);
        let path = maze.route(&stm, 1, 0, 7).expect("path exists");
        assert_eq!(path.len(), 8, "shortest path along the top row");
        assert!(maze.verify_path(1, &path));
        assert_eq!(maze.claimed_cells(), 8);
    }

    #[test]
    fn route_around_obstacle() {
        let stm = Stm::default();
        let maze = Maze::new(5, 5);
        // Wall down column 2, except the bottom row.
        let wall: Vec<Cell> = (0..4).map(|y| y * 5 + 2).collect();
        stm.atomically(|tx| {
            let mut g = tx.read(&maze.grid)?;
            for &c in &wall {
                g = g.insert(c, 999).0;
            }
            tx.write(&maze.grid, g)?;
            Ok(())
        });
        // Route from (0,0) to (4,0): must detour under the wall.
        let path = maze.route(&stm, 1, 0, 4).expect("detour exists");
        assert!(path.len() > 5, "must be longer than the straight line");
        assert!(maze.verify_path(1, &path));
    }

    #[test]
    fn blocked_route_returns_none() {
        let stm = Stm::default();
        let maze = Maze::new(3, 3);
        // Full wall down the middle column.
        stm.atomically(|tx| {
            let mut g = tx.read(&maze.grid)?;
            for y in 0..3 {
                g = g.insert(y * 3 + 1, 7).0;
            }
            tx.write(&maze.grid, g)?;
            Ok(())
        });
        assert_eq!(maze.route(&stm, 1, 0, 2), None);
    }

    #[test]
    fn occupied_endpoint_fails() {
        let stm = Stm::default();
        let maze = Maze::new(4, 4);
        let p = maze.route(&stm, 1, 0, 3).unwrap();
        assert!(maze.verify_path(1, &p));
        // Destination now owned by route 1.
        assert_eq!(maze.route(&stm, 2, 12, 3), None);
    }

    #[test]
    fn release_frees_cells() {
        let stm = Stm::default();
        let maze = Maze::new(4, 1);
        let p = maze.route(&stm, 1, 0, 3).unwrap();
        maze.release(&stm, 1, &p);
        assert_eq!(maze.claimed_cells(), 0);
        // The corridor is routable again.
        assert!(maze.route(&stm, 2, 0, 3).is_some());
    }

    #[test]
    fn concurrent_routes_never_overlap() {
        use std::sync::Arc;
        let stm = Stm::default();
        let maze = Arc::new(Maze::new(24, 24));
        type ClaimedPaths = Vec<(u64, Vec<Cell>)>;
        let paths: Arc<parking_lot_stub::Mutex<ClaimedPaths>> =
            Arc::new(parking_lot_stub::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let stm = stm.clone();
                let maze = Arc::clone(&maze);
                let paths = Arc::clone(&paths);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t);
                    for i in 0..30 {
                        let id = t * 1000 + i;
                        let src = rng.gen_range(0..24 * 24);
                        let dst = rng.gen_range(0..24 * 24);
                        if let Some(p) = maze.route(&stm, id, src, dst) {
                            paths.lock().push((id, p));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let claimed = paths.lock().clone();
        assert!(!claimed.is_empty());
        // No cell owned by two routes; every path verified.
        let mut seen = std::collections::HashSet::new();
        for (id, path) in &claimed {
            assert!(maze.verify_path(*id, path), "route {id} corrupted");
            for c in path {
                assert!(seen.insert(*c), "cell {c} claimed twice");
            }
        }
    }

    #[test]
    fn workload_sustains_throughput() {
        let w = LabyrinthWorkload::new(LabyrinthConfig::small(), Stm::default());
        let mut st = w.init_worker(0);
        for _ in 0..200 {
            w.run_task(&mut st);
        }
        assert!(w.routed() > 0);
        // Recycling keeps the board from saturating completely.
        let occupancy = w.maze().claimed_cells() as f64 / f64::from(32u32 * 32);
        assert!(occupancy < 0.9, "board saturated: {occupancy}");
    }

    // Minimal local mutex shim so the test has no extra dev-deps; the
    // crate already depends on parking_lot transitively via rubic-stm,
    // but using std keeps the test self-contained.
    mod parking_lot_stub {
        pub struct Mutex<T>(std::sync::Mutex<T>);
        impl<T> Mutex<T> {
            pub fn new(v: T) -> Self {
                Mutex(std::sync::Mutex::new(v))
            }
            pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
                self.0.lock().unwrap()
            }
        }
    }
}
