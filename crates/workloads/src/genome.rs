//! Genome — a port of the STAMP gene-sequencing benchmark, an
//! extension beyond the paper's three evaluated workloads.
//!
//! STAMP's genome reassembles a reference string from overlapping
//! segments in three phases: (1) **deduplicate** the segment pool in a
//! shared hash set; (2) **match** unique segments by overlap, linking
//! each segment to the one its suffix continues into; (3) serially walk
//! the links to rebuild the sequence. Phases 1–2 are transactional and
//! dominate the runtime.
//!
//! This port keeps the three phases and their shared structures
//! (dedup set + link table in `TMap`s) but streams batches of segments
//! for sustained throughput, like the other ports: one task = one
//! segment processed through dedup + matching. The serial
//! reconstruction ([`GenomeWorkload::reconstruct`]) doubles as the
//! correctness oracle: tests reassemble the original genome exactly.

use rubic_sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rubic_runtime::Workload;
use rubic_stm::Stm;

use crate::tmap::TMap;

/// A segment: `segment_len` consecutive bases from the genome.
pub type Segment = Vec<u8>;

/// Genome parameters (STAMP flags in brackets).
#[derive(Debug, Clone, Copy)]
pub struct GenomeConfig {
    /// Genome length in bases (`-g`).
    pub genome_len: usize,
    /// Segment length (`-s`).
    pub segment_len: usize,
    /// Segments generated per batch, drawn with duplicates (`-n` is the
    /// STAMP total; batches stream forever here).
    pub segments_per_batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GenomeConfig {
    /// A small configuration whose reconstruction is fast to verify.
    #[must_use]
    pub fn small() -> Self {
        GenomeConfig {
            genome_len: 256,
            segment_len: 16,
            segments_per_batch: 64,
            seed: 0x5EED_000A,
        }
    }
}

/// The shared sequencing state.
pub struct GenomeWorkload {
    /// The hidden reference string segments are drawn from.
    genome: Vec<u8>,
    /// Phase 1: the set of unique segments, keyed by content. The value
    /// is the segment's start-of-suffix lookup key (see `links`).
    unique: TMap<Segment, ()>,
    /// Phase 2: `prefix(segment) → segment` — each unique segment
    /// registered under its (segment_len − 1)-base prefix, so a segment
    /// whose suffix equals that prefix can link to it.
    by_prefix: TMap<Segment, Segment>,
    cfg: GenomeConfig,
    stm: Stm,
    duplicates: AtomicU64,
    uniques: AtomicU64,
}

impl GenomeWorkload {
    /// Generates a random genome over {A, C, G, T}.
    #[must_use]
    pub fn new(cfg: GenomeConfig, stm: Stm) -> Self {
        assert!(cfg.segment_len >= 2, "segments need at least 2 bases");
        assert!(
            cfg.genome_len >= cfg.segment_len,
            "genome shorter than a segment"
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let bases = [b'A', b'C', b'G', b'T'];
        let genome: Vec<u8> = (0..cfg.genome_len)
            .map(|_| bases[rng.gen_range(0..4)])
            .collect();
        GenomeWorkload {
            genome,
            unique: TMap::new(),
            by_prefix: TMap::new(),
            cfg,
            stm,
            duplicates: AtomicU64::new(0),
            uniques: AtomicU64::new(0),
        }
    }

    /// The reference genome (tests).
    #[must_use]
    pub fn genome(&self) -> &[u8] {
        &self.genome
    }

    /// The STM runtime.
    #[must_use]
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// Unique segments admitted so far.
    #[must_use]
    pub fn uniques(&self) -> u64 {
        self.uniques.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Duplicate segments rejected so far.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Processes one segment: transactional dedup insert + prefix
    /// registration (phases 1–2). Returns `true` if the segment was
    /// fresh.
    pub fn process_segment(&self, segment: &Segment) -> bool {
        let fresh = self.stm.atomically(|tx| {
            if self.unique.contains(tx, segment)? {
                return Ok(false);
            }
            self.unique.insert(tx, segment.clone(), ())?;
            let prefix = segment[..segment.len() - 1].to_vec();
            self.by_prefix.insert(tx, prefix, segment.clone())?;
            Ok(true)
        });
        // ordering: stat counters — the transactional insert above is
        // the synchronisation point; these only feed progress reports.
        if fresh {
            self.uniques.fetch_add(1, Ordering::Relaxed);
        } else {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Phase 3 (serial): starting from the segment at genome position
    /// 0, repeatedly follow `suffix → registered prefix` links,
    /// extending by one base per hop — reconstructing the genome if
    /// every consecutive segment was processed.
    #[must_use]
    pub fn reconstruct(&self) -> Vec<u8> {
        let s = self.cfg.segment_len;
        let start: Segment = self.genome[..s].to_vec();
        let by_prefix = self.by_prefix.snapshot();
        let mut out = start.clone();
        let mut current = start;
        while out.len() < self.cfg.genome_len {
            let suffix: Segment = current[1..].to_vec();
            let Some(next) = by_prefix.get(&suffix) else {
                break;
            };
            out.push(*next.last().expect("segments are non-empty"));
            current = next.clone();
        }
        out
    }

    /// Generates one batch of segments: every consecutive window once
    /// (so reconstruction is possible), plus random duplicates, shuffled.
    #[must_use]
    pub fn generate_batch(&self, rng: &mut SmallRng) -> Vec<Segment> {
        let s = self.cfg.segment_len;
        let windows = self.genome.len() - s + 1;
        let mut batch: Vec<Segment> = Vec::with_capacity(self.cfg.segments_per_batch);
        for _ in 0..self.cfg.segments_per_batch {
            let at = rng.gen_range(0..windows);
            batch.push(self.genome[at..at + s].to_vec());
        }
        batch.shuffle(rng);
        batch
    }
}

/// Per-worker state: the segment stream.
pub struct GenomeWorkerState {
    rng: SmallRng,
    pending: Vec<Segment>,
}

impl Workload for GenomeWorkload {
    type WorkerState = GenomeWorkerState;

    fn init_worker(&self, tid: usize) -> GenomeWorkerState {
        GenomeWorkerState {
            rng: SmallRng::seed_from_u64(
                self.cfg.seed ^ (tid as u64).wrapping_mul(0x94D0_49BB_1331_11EB),
            ),
            pending: Vec::new(),
        }
    }

    fn run_task(&self, state: &mut GenomeWorkerState) {
        if state.pending.is_empty() {
            state.pending = self.generate_batch(&mut state.rng);
        }
        let segment = state.pending.pop().expect("just refilled");
        let _ = self.process_segment(&segment);
    }

    fn drain_aborts(&self, _state: &mut GenomeWorkerState) -> u64 {
        rubic_stm::take_thread_aborts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all_windows(w: &GenomeWorkload) {
        let s = w.cfg.segment_len;
        for at in 0..=(w.genome().len() - s) {
            let seg = w.genome()[at..at + s].to_vec();
            w.process_segment(&seg);
        }
    }

    #[test]
    fn dedup_counts() {
        let w = GenomeWorkload::new(GenomeConfig::small(), Stm::default());
        let seg = w.genome()[0..16].to_vec();
        assert!(w.process_segment(&seg));
        assert!(!w.process_segment(&seg));
        assert_eq!(w.uniques(), 1);
        assert_eq!(w.duplicates(), 1);
    }

    #[test]
    fn full_window_coverage_reconstructs_genome() {
        let w = GenomeWorkload::new(GenomeConfig::small(), Stm::default());
        drain_all_windows(&w);
        let rebuilt = w.reconstruct();
        assert_eq!(rebuilt, w.genome(), "reconstruction mismatch");
    }

    #[test]
    fn partial_coverage_reconstructs_partially() {
        let w = GenomeWorkload::new(GenomeConfig::small(), Stm::default());
        // Only the first 10 windows: reconstruction stops early.
        for at in 0..10 {
            let seg = w.genome()[at..at + 16].to_vec();
            w.process_segment(&seg);
        }
        let rebuilt = w.reconstruct();
        assert!(rebuilt.len() < w.genome().len());
        assert_eq!(&rebuilt[..], &w.genome()[..rebuilt.len()]);
    }

    #[test]
    fn workload_stream_eventually_covers_genome() {
        let w = GenomeWorkload::new(GenomeConfig::small(), Stm::default());
        let mut st = w.init_worker(0);
        // Coupon-collector over 241 windows at 64 segments/batch: a few
        // thousand tasks suffice with overwhelming probability.
        for _ in 0..8_000 {
            w.run_task(&mut st);
        }
        assert_eq!(w.reconstruct(), w.genome());
        assert!(w.duplicates() > 0, "stream should produce duplicates");
    }

    #[test]
    fn concurrent_processing_is_exact() {
        use std::sync::Arc;
        let w = Arc::new(GenomeWorkload::new(GenomeConfig::small(), Stm::default()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    let mut st = w.init_worker(t);
                    for _ in 0..2_000 {
                        w.run_task(&mut st);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let windows = (w.genome().len() - 16 + 1) as u64;
        assert!(w.uniques() <= windows, "more uniques than windows");
        assert_eq!(
            w.uniques() + w.duplicates(),
            4 * 2_000,
            "every task accounted exactly once"
        );
        // The dedup set and the prefix table must agree.
        assert_eq!(
            w.unique.snapshot().len(),
            w.uniques() as usize,
            "unique-set size mismatch"
        );
    }

    #[test]
    #[should_panic(expected = "genome shorter")]
    fn rejects_degenerate_config() {
        let cfg = GenomeConfig {
            genome_len: 4,
            segment_len: 16,
            ..GenomeConfig::small()
        };
        let _ = GenomeWorkload::new(cfg, Stm::default());
    }
}
