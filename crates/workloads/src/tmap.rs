//! `TMap` — a transactional ordered map.
//!
//! Couples the persistent red-black tree ([`crate::pers::PMap`]) with a
//! single `TVar`: a transactional read clones an `Arc` handle to an
//! immutable snapshot (O(1)), pure tree code does the work, and updates
//! write the new snapshot back. Structural sharing keeps updates at
//! O(log n) allocation.
//!
//! Concurrency profile (documented in DESIGN.md §16): in the default
//! single-version protocol, lookups *validate* against the root `TVar`
//! and can therefore abort when any update to the same map commits
//! concurrently — they are write-free, not conflict-free. Only under
//! the `mvcc` feature's declared read-only mode ([`rubic_stm::Stm::
//! read_only`]) do lookups pin a snapshot and become abort-free.
//! Updates always serialise on the map's single root `TVar` — the
//! snapshot-map discipline standard for immutable-value STMs (Haskell/
//! Clojure lineage) — which makes every update conflict with every
//! other update on the same map, regardless of key. For the opposite
//! trade-off see [`crate::btree::TBTreeMap`]: one `TVar` per node, so a
//! transaction's footprint is only the O(log n) path it touched and
//! updates on disjoint subtrees commute. Both implement
//! [`crate::mapapi::TOrdMap`], so workloads generic over
//! [`crate::mapapi::MapFamily`] can swap them freely.

use rubic_stm::{TVar, Transaction, TxResult, TxValue};

use crate::mapapi::TOrdMap;
use crate::pers::PMap;

/// Key bound for transactional maps.
pub trait TKey: Ord + Clone + Send + Sync + 'static {}
impl<K: Ord + Clone + Send + Sync + 'static> TKey for K {}

/// A transactional ordered map.
///
/// ```
/// use rubic_stm::Stm;
/// use rubic_workloads::tmap::TMap;
///
/// let stm = Stm::default();
/// let m: TMap<u64, u64> = TMap::new();
/// stm.atomically(|tx| m.insert(tx, 7, 70));
/// let v = stm.atomically(|tx| m.get(tx, &7));
/// assert_eq!(v, Some(70));
/// ```
pub struct TMap<K: TKey, V: TxValue> {
    cell: TVar<PMap<K, V>>,
}

impl<K: TKey, V: TxValue> TMap<K, V> {
    /// Creates an empty transactional map.
    #[must_use]
    pub fn new() -> Self {
        TMap {
            cell: TVar::new(PMap::new()),
        }
    }

    /// Creates an empty map whose snapshot cell carries a trace label,
    /// so contention tables and post-mortems name it (no-op without the
    /// `trace` feature).
    #[must_use]
    pub fn labelled(label: &str) -> Self {
        TMap {
            cell: TVar::labelled(PMap::new(), label),
        }
    }

    /// Looks up `key` within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn get(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>> {
        tx.read_with(&self.cell, |m| m.get(key).cloned())
    }

    /// Membership test within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn contains(&self, tx: &mut Transaction, key: &K) -> TxResult<bool> {
        tx.read_with(&self.cell, |m| m.contains(key))
    }

    /// Inserts `key → value`; returns the previous value if present.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn insert(&self, tx: &mut Transaction, key: K, value: V) -> TxResult<Option<V>> {
        let snap = tx.read(&self.cell)?;
        let (next, old) = snap.insert(key, value);
        tx.write(&self.cell, next)?;
        Ok(old)
    }

    /// Removes `key`; returns the removed value if present.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn remove(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>> {
        let snap = tx.read(&self.cell)?;
        if !snap.contains(key) {
            // Avoid a write (and the W/W serialisation it implies) for
            // no-op removals — a big deal for delete-heavy mixes on
            // sparse key ranges.
            return Ok(None);
        }
        let (next, old) = snap.remove(key);
        tx.write(&self.cell, next)?;
        Ok(old)
    }

    /// Reads `key`, applies `f`, writes the result back; inserts
    /// `default` first when absent. Returns the new value.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn update_or(
        &self,
        tx: &mut Transaction,
        key: K,
        default: V,
        f: impl FnOnce(&V) -> V,
    ) -> TxResult<V> {
        let snap = tx.read(&self.cell)?;
        let new_value = match snap.get(&key) {
            Some(v) => f(v),
            None => default,
        };
        let (next, _) = snap.insert(key, new_value.clone());
        tx.write(&self.cell, next)?;
        Ok(new_value)
    }

    /// Number of entries within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn len(&self, tx: &mut Transaction) -> TxResult<usize> {
        tx.read_with(&self.cell, PMap::len)
    }

    /// True when empty within `tx`.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn is_empty(&self, tx: &mut Transaction) -> TxResult<bool> {
        tx.read_with(&self.cell, PMap::is_empty)
    }

    /// Non-transactional consistent snapshot (monitoring/inspection).
    #[must_use]
    pub fn snapshot(&self) -> PMap<K, V> {
        self.cell.snapshot()
    }

    /// The map's persistent snapshot as observed by `tx` — for bulk
    /// reads (iteration, aggregation) that must be consistent with the
    /// rest of the transaction.
    ///
    /// # Errors
    /// Propagates transactional conflicts.
    pub fn read_snapshot(&self, tx: &mut Transaction) -> TxResult<PMap<K, V>> {
        tx.read(&self.cell)
    }
}

impl<K: TKey, V: TxValue> TOrdMap<K, V> for TMap<K, V> {
    fn empty() -> Self {
        TMap::new()
    }

    fn empty_labelled(label: &str) -> Self {
        TMap::labelled(label)
    }

    fn get(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>> {
        TMap::get(self, tx, key)
    }

    fn contains(&self, tx: &mut Transaction, key: &K) -> TxResult<bool> {
        TMap::contains(self, tx, key)
    }

    fn insert(&self, tx: &mut Transaction, key: K, value: V) -> TxResult<Option<V>> {
        TMap::insert(self, tx, key, value)
    }

    fn remove(&self, tx: &mut Transaction, key: &K) -> TxResult<Option<V>> {
        TMap::remove(self, tx, key)
    }

    fn update_or(
        &self,
        tx: &mut Transaction,
        key: K,
        default: V,
        f: impl FnOnce(&V) -> V,
    ) -> TxResult<V> {
        // The inherent version reads the snapshot once instead of the
        // trait default's get-then-insert double read.
        TMap::update_or(self, tx, key, default, f)
    }

    fn len(&self, tx: &mut Transaction) -> TxResult<usize> {
        TMap::len(self, tx)
    }

    fn is_empty(&self, tx: &mut Transaction) -> TxResult<bool> {
        TMap::is_empty(self, tx)
    }

    fn entries(&self, tx: &mut Transaction) -> TxResult<Vec<(K, V)>> {
        Ok(self.read_snapshot(tx)?.entries())
    }

    fn snapshot_entries(&self) -> Vec<(K, V)> {
        self.snapshot().entries()
    }

    fn check_invariants(&self) -> Result<usize, String> {
        // `PMap::check_invariants` returns the black height; the trait
        // contract wants the entry count.
        let snap = self.snapshot();
        snap.check_invariants()?;
        Ok(snap.len())
    }
}

impl<K: TKey, V: TxValue> Default for TMap<K, V> {
    fn default() -> Self {
        TMap::new()
    }
}

impl<K: TKey, V: TxValue> Clone for TMap<K, V> {
    /// Clones the *handle*: both handles address the same transactional
    /// map.
    fn clone(&self) -> Self {
        TMap {
            cell: self.cell.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rubic_stm::Stm;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove() {
        let stm = Stm::default();
        let m: TMap<u32, String> = TMap::new();
        assert_eq!(stm.atomically(|tx| m.insert(tx, 1, "one".into())), None);
        assert_eq!(
            stm.atomically(|tx| m.insert(tx, 1, "uno".into())),
            Some("one".to_string())
        );
        assert_eq!(stm.atomically(|tx| m.get(tx, &1)), Some("uno".to_string()));
        assert_eq!(
            stm.atomically(|tx| m.remove(tx, &1)),
            Some("uno".to_string())
        );
        assert_eq!(stm.atomically(|tx| m.get(tx, &1)), None);
    }

    #[test]
    fn remove_missing_avoids_write() {
        let stm = Stm::default();
        let m: TMap<u32, u32> = TMap::new();
        stm.atomically(|tx| m.insert(tx, 1, 1));
        let writes_before = stm.stats().writes();
        assert_eq!(stm.atomically(|tx| m.remove(tx, &99)), None);
        assert_eq!(
            stm.stats().writes(),
            writes_before,
            "no-op removal must not write"
        );
    }

    #[test]
    fn update_or_inserts_then_updates() {
        let stm = Stm::default();
        let m: TMap<u32, u64> = TMap::new();
        assert_eq!(stm.atomically(|tx| m.update_or(tx, 5, 1, |v| v + 1)), 1);
        assert_eq!(stm.atomically(|tx| m.update_or(tx, 5, 1, |v| v + 1)), 2);
        assert_eq!(stm.atomically(|tx| m.get(tx, &5)), Some(2));
    }

    #[test]
    fn multi_map_transaction_is_atomic() {
        let stm = Stm::default();
        let a: TMap<u32, u32> = TMap::new();
        let b: TMap<u32, u32> = TMap::new();
        stm.atomically(|tx| {
            a.insert(tx, 1, 10)?;
            b.insert(tx, 1, 20)?;
            Ok(())
        });
        let (va, vb) = stm.atomically(|tx| Ok((a.get(tx, &1)?, b.get(tx, &1)?)));
        assert_eq!((va, vb), (Some(10), Some(20)));
    }

    #[test]
    fn concurrent_disjoint_key_inserts_all_land() {
        let stm = Stm::default();
        let m: Arc<TMap<u64, u64>> = Arc::new(TMap::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let stm = stm.clone();
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let key = t * 1000 + i;
                        stm.atomically(|tx| m.insert(tx, key, key));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.len(), 400);
        snap.check_invariants().expect("rb invariants");
    }

    #[test]
    fn snapshot_len_matches_tx_len() {
        let stm = Stm::default();
        let m: TMap<u8, u8> = TMap::new();
        for k in 0..50 {
            stm.atomically(|tx| m.insert(tx, k, k));
        }
        assert_eq!(m.snapshot().len(), 50);
        assert_eq!(stm.atomically(|tx| m.len(tx)), 50);
        assert!(!stm.atomically(|tx| m.is_empty(tx)));
    }

    #[test]
    fn clone_shares_state() {
        let stm = Stm::default();
        let a: TMap<u8, u8> = TMap::new();
        let b = a.clone();
        stm.atomically(|tx| a.insert(tx, 1, 1));
        assert_eq!(stm.atomically(|tx| b.get(tx, &1)), Some(1));
    }
}
