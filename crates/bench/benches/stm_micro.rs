//! STM primitive microbenchmarks: transaction begin/commit paths,
//! read/write costs, contention-manager comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rubic::prelude::*;
use rubic::stm::{Aggressive, Backoff, Polite};

fn bench_read_only(c: &mut Criterion) {
    let stm = Stm::default();
    let v = TVar::new(42u64);
    c.bench_function("stm/read_only_tx", |b| {
        b.iter(|| stm.atomically(|tx| tx.read(black_box(&v))));
    });
}

fn bench_write_tx(c: &mut Criterion) {
    let stm = Stm::default();
    let v = TVar::new(0u64);
    c.bench_function("stm/write_tx", |b| {
        b.iter(|| stm.atomically(|tx| tx.write(black_box(&v), 7)));
    });
}

fn bench_rmw_tx(c: &mut Criterion) {
    let stm = Stm::default();
    let v = TVar::new(0u64);
    c.bench_function("stm/read_modify_write_tx", |b| {
        b.iter(|| stm.atomically(|tx| tx.modify(black_box(&v), |x| x + 1)));
    });
}

fn bench_read_n(c: &mut Criterion) {
    let stm = Stm::default();
    let vars: Vec<TVar<u64>> = (0..256).map(TVar::new).collect();
    let mut group = c.benchmark_group("stm/read_set_scaling");
    for n in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                stm.atomically(|tx| {
                    let mut acc = 0u64;
                    for v in &vars[..n] {
                        acc = acc.wrapping_add(tx.read(v)?);
                    }
                    Ok(acc)
                })
            });
        });
    }
    group.finish();
}

fn bench_write_n(c: &mut Criterion) {
    let stm = Stm::default();
    let vars: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
    let mut group = c.benchmark_group("stm/write_set_scaling");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                stm.atomically(|tx| {
                    for (i, v) in vars[..n].iter().enumerate() {
                        tx.write(v, i as u64)?;
                    }
                    Ok(())
                })
            });
        });
    }
    group.finish();
}

fn bench_contention_managers(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/contention_manager_2threads");
    group.sample_size(10);
    let run = |stm: Stm| {
        let v = std::sync::Arc::new(TVar::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let stm = stm.clone();
                let v = std::sync::Arc::clone(&v);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        stm.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    };
    group.bench_function("backoff", |b| {
        b.iter(|| {
            run(Stm::builder()
                .contention_manager(Backoff::default())
                .build())
        });
    });
    group.bench_function("polite", |b| {
        b.iter(|| run(Stm::builder().contention_manager(Polite).build()));
    });
    group.bench_function("aggressive", |b| {
        b.iter(|| run(Stm::builder().contention_manager(Aggressive).build()));
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let v = TVar::new(vec![1u64; 16]);
    c.bench_function("stm/non_transactional_snapshot", |b| {
        b.iter(|| black_box(&v).snapshot());
    });
}

criterion_group!(
    benches,
    bench_read_only,
    bench_write_tx,
    bench_rmw_tx,
    bench_read_n,
    bench_write_n,
    bench_contention_managers,
    bench_snapshot
);
criterion_main!(benches);
