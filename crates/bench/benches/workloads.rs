//! Workload task-cost benchmarks: one task = one transaction (or one
//! client session), the unit the malleable pool's throughput counter
//! counts.

use criterion::{criterion_group, criterion_main, Criterion};
use rubic::prelude::*;
use rubic::runtime::Workload;

fn bench_rbtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/rbtree");
    group.bench_function("paper_mix_task", |b| {
        let w = RbTreeWorkload::new(RbTreeConfig::small(), Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.bench_function("read_only_task", |b| {
        let w = RbTreeWorkload::new(
            RbTreeConfig::small().with_mix(OpMix::read_only()),
            Stm::default(),
        );
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.bench_function("write_heavy_task", |b| {
        let w = RbTreeWorkload::new(
            RbTreeConfig::small().with_mix(OpMix::write_heavy()),
            Stm::default(),
        );
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.finish();
}

fn bench_vacation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/vacation");
    group.bench_function("low_contention_session", |b| {
        let w = VacationWorkload::new(VacationConfig::low_contention(256), Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.bench_function("high_contention_session", |b| {
        let w = VacationWorkload::new(VacationConfig::high_contention(256), Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.finish();
}

fn bench_intruder(c: &mut Criterion) {
    c.bench_function("workloads/intruder/packet_task", |b| {
        let w = IntruderWorkload::new(IntruderConfig::paper(), Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
}

fn bench_labyrinth(c: &mut Criterion) {
    c.bench_function("workloads/labyrinth/route_task", |b| {
        let w = LabyrinthWorkload::new(LabyrinthConfig::small(), Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/kmeans");
    group.bench_function("high_contention_assign", |b| {
        let w = KMeansWorkload::new(KMeansConfig::high_contention(), Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.bench_function("low_contention_assign", |b| {
        let w = KMeansWorkload::new(KMeansConfig::low_contention(), Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/counters");
    group.bench_function("conflict_counter_task", |b| {
        let w = ConflictCounter::new(Stm::default());
        w.init_worker(0);
        b.iter(|| w.run_task(&mut ()));
    });
    group.bench_function("striped16_counter_task", |b| {
        let w = StripedCounter::new(16, Stm::default());
        let mut st = w.init_worker(0);
        b.iter(|| w.run_task(&mut st));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rbtree,
    bench_vacation,
    bench_intruder,
    bench_labyrinth,
    bench_kmeans,
    bench_counters
);
criterion_main!(benches);
