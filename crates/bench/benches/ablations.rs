//! Timing side of the ablations: how much the Algorithm 2 machinery
//! costs relative to its simpler ancestors, and the ablation-figure
//! generation itself (quality metrics are produced by
//! `figures --ablations`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rubic::prelude::*;

fn drive_controller(mut ctl: Box<dyn Controller>, rounds: u64) -> u32 {
    let mut level = 1u32;
    for round in 0..rounds {
        let l = f64::from(level);
        let thr = if l <= 64.0 { l } else { 64.0 - (l - 64.0) };
        level = ctl.decide(Sample {
            throughput: thr,
            level,
            round,
        });
    }
    level
}

fn bench_controller_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/controller_cost_1000_rounds");
    let cfg = PolicyConfig::paper(1);
    for policy in [Policy::Rubic, Policy::Cimd, Policy::Aimd, Policy::Ebs] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| drive_controller(policy.build(&cfg), black_box(1000)));
        });
    }
    group.finish();
}

fn bench_k_conventions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/k_convention_cost");
    for (label, conv) in [
        ("tcp", CubicKConvention::TcpCubic),
        ("paper_literal", CubicKConvention::PaperLiteral),
    ] {
        group.bench_function(label, |b| {
            let cfg = RubicConfig {
                convention: conv,
                ..RubicConfig::default()
            };
            b.iter(|| drive_controller(Box::new(Rubic::new(cfg, 128)), black_box(1000)));
        });
    }
    group.finish();
}

fn bench_ablation_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/figure_generation");
    group.sample_size(10);
    group.bench_function("k_convention", |b| {
        b.iter(rubic_bench::ablations::k_convention);
    });
    group.bench_function("penalty_sweep", |b| {
        b.iter(rubic_bench::ablations::penalty_sweep);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_controller_families,
    bench_k_conventions,
    bench_ablation_figures
);
criterion_main!(benches);
