//! Controller decision-cost microbenchmarks: the paper's monitor runs
//! every 10 ms, so a decision must cost microseconds at most. Also
//! benches the cubic function evaluation itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rubic::prelude::*;
use rubic_controllers::cubic_level;

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("controllers/decide");
    let cfg = PolicyConfig::paper(2);
    for policy in [
        Policy::Rubic,
        Policy::Ebs,
        Policy::F2c2,
        Policy::Aimd,
        Policy::Cimd,
        Policy::Greedy,
        Policy::EqualShare,
    ] {
        group.bench_function(policy.label(), |b| {
            let mut ctl = policy.build(&cfg);
            let mut level = 1u32;
            let mut round = 0u64;
            b.iter(|| {
                // Alternate gains and losses so every branch is hot.
                let thr = if round.is_multiple_of(3) { 10.0 } else { 100.0 };
                level = ctl.decide(black_box(Sample {
                    throughput: thr,
                    level,
                    round,
                }));
                round += 1;
                level
            });
        });
    }
    group.finish();
}

fn bench_cubic_eval(c: &mut Criterion) {
    c.bench_function("controllers/cubic_level_eval", |b| {
        b.iter(|| {
            cubic_level(
                black_box(64.0),
                black_box(7.3),
                0.8,
                0.1,
                CubicKConvention::TcpCubic,
            )
        });
    });
}

fn bench_full_convergence(c: &mut Criterion) {
    // Cost of a whole 1000-round control loop (no simulation around it).
    c.bench_function("controllers/rubic_1000_rounds", |b| {
        b.iter(|| {
            let mut ctl = Rubic::new(RubicConfig::default(), 128);
            let mut level = 1u32;
            for round in 0..1000u64 {
                let l = f64::from(level);
                let thr = if l <= 64.0 { l } else { 64.0 - (l - 64.0) };
                level = ctl.decide(Sample {
                    throughput: thr,
                    level,
                    round,
                });
            }
            level
        });
    });
}

criterion_group!(
    benches,
    bench_decide,
    bench_cubic_eval,
    bench_full_convergence
);
criterion_main!(benches);
