//! Malleable-pool overhead benchmarks: the cost of the Algorithm 1
//! gating check relative to raw task execution, semaphore round-trips,
//! and whole-pool throughput at fixed levels.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rubic::prelude::*;
use rubic::runtime::Semaphore;

#[derive(Clone)]
struct Spin(u64);
impl Workload for Spin {
    type WorkerState = ();
    fn init_worker(&self, _tid: usize) {}
    fn run_task(&self, (): &mut ()) {
        std::hint::black_box((0..self.0).fold(0u64, |a, b| a.wrapping_add(b)));
    }
}

fn bench_semaphore(c: &mut Criterion) {
    let sem = Semaphore::new(0);
    c.bench_function("pool/semaphore_signal_wait", |b| {
        b.iter(|| {
            sem.signal();
            sem.wait();
        });
    });
}

fn bench_pool_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool/fixed_level_run_50ms");
    group.sample_size(10);
    for level in [1u32, 2] {
        group.bench_function(format!("level_{level}"), |b| {
            b.iter(|| {
                let pool = MalleablePool::start(
                    PoolConfig::new(2)
                        .initial_level(level)
                        .monitor_period(Duration::from_millis(5)),
                    Spin(200),
                    Box::new(Fixed::new(level, 2)),
                );
                std::thread::sleep(Duration::from_millis(50));
                pool.stop().total_tasks
            });
        });
    }
    group.finish();
}

fn bench_gating_overhead(c: &mut Criterion) {
    // Raw loop vs pool-managed loop on one thread: the difference is
    // the per-task gate check + counter update.
    let mut group = c.benchmark_group("pool/gating_overhead");
    group.sample_size(10);
    group.bench_function("raw_loop_20k_tasks", |b| {
        let w = Spin(200);
        let mut st = ();
        b.iter(|| {
            for _ in 0..20_000 {
                w.run_task(&mut st);
            }
        });
    });
    group.bench_function("pooled_20k_tasks", |b| {
        b.iter(|| {
            let pool = MalleablePool::start(
                PoolConfig::new(1)
                    .initial_level(1)
                    .task_budget(20_000)
                    .monitor_period(Duration::from_millis(5)),
                Spin(200),
                Box::new(Fixed::new(1, 1)),
            );
            pool.wait_budget_exhausted();
            pool.stop().total_tasks
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_semaphore,
    bench_pool_throughput,
    bench_gating_overhead
);
criterion_main!(benches);
