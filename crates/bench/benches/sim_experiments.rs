//! Simulator throughput benchmarks: cost of one 1000-round run and of a
//! full paper-protocol experiment (50 repetitions), to size the figure
//! harness.

use criterion::{criterion_group, criterion_main, Criterion};
use rubic::prelude::*;
use rubic::sim::{ProcessSpec, SimConfig};
use rubic_sim::curves::{intruder_like, rbt_like, rbt_readonly};

fn bench_single_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/single_run_1000_rounds");
    for (label, policy) in [("rubic", Policy::Rubic), ("ebs", Policy::Ebs)] {
        group.bench_function(label, |b| {
            let specs = [
                ProcessSpec::new("Int", intruder_like(), policy),
                ProcessSpec::new("RBT", rbt_like(), policy),
            ];
            let cfg = SimConfig::paper(2).with_noise(0.02, 3);
            b.iter(|| rubic::sim::run(&specs, &cfg).nash_product());
        });
    }
    group.finish();
}

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/experiment_50_reps");
    group.sample_size(10);
    group.bench_function("pair_rubic", |b| {
        b.iter(|| {
            Experiment::paper(
                vec![
                    WorkloadSpec::new("Int", intruder_like()),
                    WorkloadSpec::new("RBT", rbt_like()),
                ],
                Policy::Rubic,
            )
            .run()
            .nash
            .mean()
        });
    });
    group.finish();
}

fn bench_convergence_scenario(c: &mut Criterion) {
    c.bench_function("sim/fig10_convergence_run", |b| {
        let specs = [
            ProcessSpec::new("P1", rbt_readonly(), Policy::Rubic),
            ProcessSpec::new("P2", rbt_readonly(), Policy::Rubic).arrives_at(500),
        ];
        let cfg = SimConfig::paper(2).with_noise(0.02, 2016);
        b.iter(|| {
            let r = rubic::sim::run(&specs, &cfg);
            r.processes[0].trace.mean_level_in(800, 1000)
        });
    });
}

criterion_group!(
    benches,
    bench_single_run,
    bench_full_experiment,
    bench_convergence_scenario
);
criterion_main!(benches);
