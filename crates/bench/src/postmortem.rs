//! Bench-side post-mortem support: `--postmortem <dir>` for the
//! `stmbench` and `poolbench` binaries.
//!
//! When the flag is set, the harness runs its sweep under a trace
//! session (builds with `--features trace` only); after validation it
//! scans every measured point for *noisy* results — relative standard
//! deviation (`stddev / mean`) above `--stddev-ratio` (default 0.25) —
//! and, if any exist, freezes the session's flight recorder into a
//! `rubic-postmortem/v1` bundle next to the `BENCH_*.json` report so
//! the run's tail of events, histograms, and contention table can be
//! inspected alongside the suspect numbers.
//!
//! Without the `trace` feature the flags still parse (so scripts stay
//! portable across builds) but the harness warns and skips the dump.

use std::path::PathBuf;

/// Parsed `--postmortem` / `--stddev-ratio` state shared by the bench
/// binaries.
#[derive(Debug, Clone)]
pub struct PostmortemOptions {
    /// Directory to drop the bundle in (`None` disables the feature).
    pub dir: Option<PathBuf>,
    /// Relative-stddev threshold above which a point counts as noisy.
    pub stddev_ratio: f64,
}

impl Default for PostmortemOptions {
    fn default() -> Self {
        PostmortemOptions {
            dir: None,
            // A quarter of the mean: far beyond run-to-run jitter on a
            // healthy configuration, low enough to catch bimodal runs.
            stddev_ratio: 0.25,
        }
    }
}

/// One benchmark point whose spread breached the ratio.
#[derive(Debug, Clone)]
pub struct NoisyPoint {
    /// Human-readable configuration label (`counter/read-heavy/sv/t4`).
    pub label: String,
    /// Mean of the breaching statistic.
    pub mean: f64,
    /// Sample standard deviation of the breaching statistic.
    pub stddev: f64,
}

/// Flags a statistic whose relative standard deviation exceeds the
/// configured ratio. Degenerate means (`<= 0`) never flag — validation
/// rejects them separately.
#[must_use]
pub fn is_noisy(mean: f64, stddev: f64, ratio: f64) -> bool {
    mean > 0.0 && stddev / mean > ratio
}

/// Trace-session wrapper: a live session in `trace` builds when a
/// post-mortem directory was requested, nothing otherwise.
pub struct BenchTrace {
    #[cfg(feature = "trace")]
    session: Option<rubic::trace::TraceSession>,
}

impl BenchTrace {
    /// Starts a recording session when `opts.dir` is set (and the
    /// harness was built with `--features trace`; warns otherwise).
    #[must_use]
    pub fn start(opts: &PostmortemOptions, bench: &str) -> Self {
        #[cfg(feature = "trace")]
        {
            let session = opts.dir.as_ref().map(|_| {
                let mut cfg = rubic::trace::TraceConfig::default();
                // Histograms + flight recorder suffice for a bundle;
                // the unbounded full event log would dominate a long
                // sweep's memory for no diagnostic gain.
                cfg.keep_events = false;
                cfg.manifest.push(("bench".to_string(), bench.to_string()));
                rubic::trace::TraceSession::start(cfg)
            });
            BenchTrace { session }
        }
        #[cfg(not(feature = "trace"))]
        {
            if opts.dir.is_some() {
                eprintln!(
                    "{bench}: --postmortem ignored — rebuild with \
                     `--features trace` to capture bundles"
                );
            }
            BenchTrace {}
        }
    }

    /// Ends the session; if any point breached the ratio, dumps one
    /// post-mortem bundle (trigger `bench-stddev`) into `opts.dir` and
    /// reports the breaching points on stderr. Returns the bundle path
    /// when one was written.
    pub fn finish(
        self,
        opts: &PostmortemOptions,
        noisy: &[NoisyPoint],
        bench: &str,
    ) -> Option<PathBuf> {
        for p in noisy {
            eprintln!(
                "{bench}: noisy point {} — stddev {:.1}% of mean \
                 (threshold {:.1}%)",
                p.label,
                100.0 * p.stddev / p.mean,
                100.0 * opts.stddev_ratio,
            );
        }
        #[cfg(feature = "trace")]
        {
            let session = self.session?;
            let dir = opts.dir.as_ref()?;
            let bundle = if noisy.is_empty() {
                None
            } else {
                // Record the anomaly in the event stream first so the
                // bundle itself names its trigger, then freeze.
                rubic::trace::emit(
                    rubic::trace::EventKind::Anomaly,
                    rubic::trace::codes::ANOMALY_BENCH_STDDEV,
                    noisy.len() as u64,
                    (opts.stddev_ratio * 1000.0) as u64,
                    0,
                );
                match session.dump_postmortem(dir, "bench-stddev") {
                    Ok(path) => {
                        eprintln!("{bench}: wrote post-mortem bundle {}", path.display());
                        Some(path)
                    }
                    Err(e) => {
                        eprintln!("{bench}: post-mortem dump failed: {e}");
                        None
                    }
                }
            };
            drop(session.finish());
            bundle
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (opts, bench);
            None
        }
    }
}

/// Parses the shared `--postmortem`/`--stddev-ratio` arguments; returns
/// `Ok(true)` when `arg` was consumed (possibly pulling a value from
/// `it`), `Ok(false)` when it belongs to the caller.
///
/// # Errors
/// A missing or malformed value for either flag.
pub fn parse_arg(
    arg: &str,
    it: &mut impl Iterator<Item = String>,
    opts: &mut PostmortemOptions,
) -> Result<bool, String> {
    match arg {
        "--postmortem" => {
            opts.dir = Some(PathBuf::from(
                it.next().ok_or("--postmortem needs a directory")?,
            ));
            Ok(true)
        }
        "--stddev-ratio" => {
            let v = it.next().ok_or("--stddev-ratio needs a value")?;
            let r: f64 = v.parse().map_err(|_| format!("bad --stddev-ratio: {v}"))?;
            if !(r > 0.0 && r.is_finite()) {
                return Err("--stddev-ratio must be a positive number".into());
            }
            opts.stddev_ratio = r;
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_threshold() {
        assert!(!is_noisy(100.0, 10.0, 0.25));
        assert!(is_noisy(100.0, 30.0, 0.25));
        assert!(!is_noisy(0.0, 30.0, 0.25));
        assert!(!is_noisy(-1.0, 30.0, 0.25));
        assert!(is_noisy(100.0, 26.0, 0.25));
    }

    #[test]
    fn arg_parsing() {
        let mut opts = PostmortemOptions::default();
        let mut it = vec!["/tmp/pm".to_string()].into_iter();
        assert_eq!(parse_arg("--postmortem", &mut it, &mut opts), Ok(true));
        assert_eq!(opts.dir.as_deref(), Some(std::path::Path::new("/tmp/pm")));

        let mut it = vec!["0.5".to_string()].into_iter();
        assert_eq!(parse_arg("--stddev-ratio", &mut it, &mut opts), Ok(true));
        assert!((opts.stddev_ratio - 0.5).abs() < 1e-12);

        let mut it = std::iter::empty();
        assert_eq!(parse_arg("--reps", &mut it, &mut opts), Ok(false));
        assert!(parse_arg("--stddev-ratio", &mut it, &mut opts).is_err());

        let mut it = vec!["-2".to_string()].into_iter();
        assert!(parse_arg("--stddev-ratio", &mut it, &mut opts).is_err());
    }

    #[test]
    fn disabled_bench_trace_is_inert() {
        let opts = PostmortemOptions::default();
        let t = BenchTrace::start(&opts, "test");
        assert!(t.finish(&opts, &[], "test").is_none());
    }
}
