//! `topobench` — mapping-policy sweep on the NUMA machine model.
//!
//! ```text
//! cargo run --release -p rubic-bench --bin topobench             # full sweep → BENCH_topo.json
//! cargo run --release -p rubic-bench --bin topobench -- --smoke  # sub-second schema-validation run
//! cargo run --release -p rubic-bench --bin topobench -- --reps 9 --rounds 2000 --out /tmp/t.json
//! ```
//!
//! Writes the `rubic-topobench/v1` JSON report (see the README's
//! "topobench" section for the schema) after validating it; a run
//! whose report breaks the flat-reproduction invariant or never shows
//! a placement-aware win exits non-zero without touching the output
//! file.

use std::path::PathBuf;

use rubic_bench::topobench::{run_sweep, TopoSweepOptions};

struct Args {
    opts: TopoSweepOptions,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut opts = TopoSweepOptions::full();
    let mut out = PathBuf::from("BENCH_topo.json");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts = TopoSweepOptions::smoke(),
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                opts.reps = v.parse().map_err(|_| format!("bad --reps: {v}"))?;
                if opts.reps == 0 {
                    return Err("--reps must be >= 1".into());
                }
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a value")?;
                opts.rounds = v.parse().map_err(|_| format!("bad --rounds: {v}"))?;
                if opts.rounds == 0 {
                    return Err("--rounds must be >= 1".into());
                }
            }
            "--noise" => {
                let v = it.next().ok_or("--noise needs a value")?;
                opts.noise = v.parse().map_err(|_| format!("bad --noise: {v}"))?;
                if !(0.0..1.0).contains(&opts.noise) {
                    return Err("--noise must be in [0, 1)".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed: {v}"))?;
            }
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a path")?),
            "--help" | "-h" => {
                return Err(
                    "usage: topobench [--smoke] [--reps N] [--rounds N] [--noise F] \
                     [--seed N] [--out PATH]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args { opts, out })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "topobench: {} reps x {} rounds, noise {}{}",
        args.opts.reps,
        args.opts.rounds,
        args.opts.noise,
        if args.opts.smoke { " (smoke)" } else { "" },
    );
    let report = run_sweep(&args.opts);
    if let Err(msg) = report.validate() {
        eprintln!("topobench: report failed validation: {msg}");
        std::process::exit(1);
    }
    let json = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("topobench: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("topobench: wrote {}", args.out.display());
}
