//! Regenerates the paper's figures and tables.
//!
//! ```text
//! cargo run --release -p rubic-bench --bin figures -- --all
//! cargo run --release -p rubic-bench --bin figures -- --fig 7 --quick
//! cargo run --release -p rubic-bench --bin figures -- --ablations
//! cargo run --release -p rubic-bench --bin figures -- --all --out results
//! ```
//!
//! Text tables go to stdout (long time-series figures are summarised);
//! full CSV series are written under `--out` (default `results/`).

use std::io::Write;
use std::path::{Path, PathBuf};

use rubic_bench::{ablations, extensions, figures, invivo, Figure};

struct Args {
    selectors: Vec<String>,
    ablations: bool,
    extensions: bool,
    in_vivo: bool,
    quick: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        selectors: Vec::new(),
        ablations: false,
        extensions: false,
        in_vivo: false,
        quick: false,
        out: PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => args.selectors.push("all".into()),
            "--fig" => {
                let v = it.next().ok_or("--fig needs a value (1..10|headline)")?;
                args.selectors.push(v);
            }
            "--headline" => args.selectors.push("headline".into()),
            "--ablations" => args.ablations = true,
            "--extensions" => args.extensions = true,
            "--in-vivo" => args.in_vivo = true,
            "--quick" => args.quick = true,
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--help" | "-h" => {
                return Err("usage: figures [--all] [--fig N]... [--headline] [--ablations] [--extensions] [--in-vivo] [--quick] [--out DIR]".into());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.selectors.is_empty() && !args.ablations && !args.extensions && !args.in_vivo {
        args.selectors.push("all".into());
    }
    Ok(args)
}

fn emit(fig: &Figure, out_dir: &Path) {
    // Long time-series figures: print a summary, write the full CSV.
    if fig.rows.len() > 40 {
        println!("== {} — {} ==", fig.id, fig.title);
        println!("  ({} rows; full series in CSV)", fig.rows.len());
        for n in &fig.notes {
            println!("  note: {n}");
        }
    } else {
        print!("{}", fig.render_text());
    }
    println!();
    let path = out_dir.join(format!("{}.csv", fig.id));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(fig.to_csv().as_bytes()) {
                eprintln!("warning: failed writing {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: failed creating {}: {e}", path.display()),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create output dir {}: {e}", args.out.display());
        std::process::exit(1);
    }
    let reps = figures::default_reps(args.quick);
    println!(
        "RUBIC figure harness — repetitions per experiment: {reps}{}",
        if args.quick { " (--quick)" } else { "" }
    );
    println!("CSV output: {}/\n", args.out.display());

    for selector in &args.selectors {
        for fig in figures::generate(selector, reps) {
            emit(&fig, &args.out);
        }
    }
    if args.ablations {
        for fig in ablations::all() {
            emit(&fig, &args.out);
        }
    }
    if args.extensions {
        for fig in extensions::all() {
            emit(&fig, &args.out);
        }
    }
    if args.in_vivo {
        for fig in invivo::all(args.quick) {
            emit(&fig, &args.out);
        }
    }
}
