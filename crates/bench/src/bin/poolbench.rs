//! `poolbench` — queue-backend comparison for the malleable pool.
//!
//! ```text
//! cargo run --release -p rubic-bench --bin poolbench             # full sweep → BENCH_pool.json
//! cargo run --release -p rubic-bench --bin poolbench -- --smoke  # ~1 s schema-validation run
//! cargo run --release -p rubic-bench --bin poolbench -- --reps 7 --workers 1,4,16 --out /tmp/p.json
//! ```
//!
//! Writes the `rubic-poolbench/v1` JSON report (see the README's
//! "poolbench" section for the schema) after validating it; a run that
//! produces an out-of-range or structurally broken report exits
//! non-zero without touching the output file.

use std::path::PathBuf;

use rubic_bench::poolbench::{run_sweep, PoolSweepOptions};
use rubic_bench::postmortem::{self, BenchTrace, NoisyPoint, PostmortemOptions};

struct Args {
    opts: PoolSweepOptions,
    out: PathBuf,
    pm: PostmortemOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut opts = PoolSweepOptions::full();
    let mut out = PathBuf::from("BENCH_pool.json");
    let mut pm = PostmortemOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts = PoolSweepOptions::smoke(),
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                opts.reps = v.parse().map_err(|_| format!("bad --reps: {v}"))?;
                if opts.reps == 0 {
                    return Err("--reps must be >= 1".into());
                }
            }
            "--items" => {
                let v = it.next().ok_or("--items needs a value")?;
                opts.items_tiny = v.parse().map_err(|_| format!("bad --items: {v}"))?;
                opts.items_stm = (opts.items_tiny / 5).max(1);
                if opts.items_tiny == 0 {
                    return Err("--items must be >= 1".into());
                }
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a comma-separated list")?;
                let parsed: Result<Vec<u32>, _> = v.split(',').map(str::parse).collect();
                opts.workers = parsed.map_err(|_| format!("bad --workers: {v}"))?;
                if opts.workers.is_empty() || opts.workers.contains(&0) {
                    return Err("--workers needs positive worker counts".into());
                }
            }
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a path")?),
            "--help" | "-h" => {
                return Err(
                    "usage: poolbench [--smoke] [--reps N] [--items N] [--workers 1,2,4] \
                     [--out PATH] [--postmortem DIR] [--stddev-ratio R]"
                        .into(),
                );
            }
            other => {
                if !postmortem::parse_arg(other, &mut it, &mut pm)? {
                    return Err(format!("unknown argument: {other}"));
                }
            }
        }
    }
    Ok(Args { opts, out, pm })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "poolbench: workers {{{}}}, {} reps, {}/{} items (tiny/stm){}",
        args.opts
            .workers
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        args.opts.reps,
        args.opts.items_tiny,
        args.opts.items_stm,
        if args.opts.smoke { " (smoke)" } else { "" },
    );
    let bench_trace = BenchTrace::start(&args.pm, "poolbench");
    let report = run_sweep(&args.opts);
    if let Err(msg) = report.validate() {
        eprintln!("poolbench: report failed validation: {msg}");
        std::process::exit(1);
    }
    let noisy: Vec<NoisyPoint> = report
        .points
        .iter()
        .filter(|p| {
            postmortem::is_noisy(
                p.ops_per_sec.mean,
                p.ops_per_sec.stddev,
                args.pm.stddev_ratio,
            )
        })
        .map(|p| NoisyPoint {
            label: format!("{}/{}/{}/w{}", p.queue, p.task, p.controller, p.workers),
            mean: p.ops_per_sec.mean,
            stddev: p.ops_per_sec.stddev,
        })
        .collect();
    bench_trace.finish(&args.pm, &noisy, "poolbench");
    let json = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("poolbench: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("poolbench: wrote {}", args.out.display());
}
