//! `stmbench` — the STM substrate's reproducible perf harness.
//!
//! ```text
//! cargo run --release -p rubic-bench --bin stmbench             # full sweep → BENCH_stm.json
//! cargo run --release -p rubic-bench --bin stmbench -- --smoke  # ~1 s schema-validation run
//! cargo run --release -p rubic-bench --bin stmbench -- --reps 5 --duration-ms 500 --out /tmp/b.json
//! cargo run --release -p rubic-bench --features mvcc --bin stmbench -- --mode sv,mvcc
//! ```
//!
//! Writes the `rubic-stmbench/v3` JSON report (see the README's
//! "Benchmarking" section for the schema) after validating it; a run
//! that produces an out-of-range or structurally broken report exits
//! non-zero without touching the output file. `--mode` restricts the
//! protocol modes swept (`sv` always available; `mvcc` only in builds
//! with `--features mvcc` — by default every available mode runs).
//! `--structure` restricts the map backends swept for the map-backed
//! workloads (`snapshot`, `btree`; counter always runs as `snapshot`).

use std::path::PathBuf;
use std::time::Duration;

use rubic_bench::postmortem::{self, BenchTrace, NoisyPoint, PostmortemOptions};
use rubic_bench::stmbench::{available_modes, run_sweep, SweepOptions, STRUCTURES};

struct Args {
    opts: SweepOptions,
    out: PathBuf,
    pm: PostmortemOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut opts = SweepOptions::full();
    let mut out = PathBuf::from("BENCH_stm.json");
    let mut pm = PostmortemOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts = SweepOptions::smoke(),
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                opts.reps = v.parse().map_err(|_| format!("bad --reps: {v}"))?;
                if opts.reps == 0 {
                    return Err("--reps must be >= 1".into());
                }
            }
            "--duration-ms" => {
                let v = it.next().ok_or("--duration-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --duration-ms: {v}"))?;
                opts.duration = Duration::from_millis(ms.max(1));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a comma-separated list")?;
                let parsed: Result<Vec<u32>, _> = v.split(',').map(str::parse).collect();
                opts.threads = parsed.map_err(|_| format!("bad --threads: {v}"))?;
                if opts.threads.is_empty() || opts.threads.contains(&0) {
                    return Err("--threads needs positive thread counts".into());
                }
            }
            "--mode" => {
                let v = it.next().ok_or("--mode needs a comma-separated list")?;
                let avail = available_modes();
                let mut modes = Vec::new();
                for m in v.split(',') {
                    let Some(&known) = avail.iter().find(|&&a| a == m) else {
                        return Err(format!(
                            "--mode {m} not available in this build (have: {})",
                            avail.join(",")
                        ));
                    };
                    if !modes.contains(&known) {
                        modes.push(known);
                    }
                }
                opts.modes = modes;
            }
            "--structure" => {
                let v = it
                    .next()
                    .ok_or("--structure needs a comma-separated list")?;
                let mut structures = Vec::new();
                for s in v.split(',') {
                    let Some(&known) = STRUCTURES.iter().find(|&&a| a == s) else {
                        return Err(format!(
                            "--structure {s} unknown (have: {})",
                            STRUCTURES.join(",")
                        ));
                    };
                    if !structures.contains(&known) {
                        structures.push(known);
                    }
                }
                opts.structures = structures;
            }
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a path")?),
            "--help" | "-h" => {
                return Err(
                    "usage: stmbench [--smoke] [--reps N] [--duration-ms N] [--threads 1,2,4] \
                     [--mode sv,mvcc] [--structure snapshot,btree] [--out PATH] \
                     [--postmortem DIR] [--stddev-ratio R]"
                        .into(),
                );
            }
            other => {
                if !postmortem::parse_arg(other, &mut it, &mut pm)? {
                    return Err(format!("unknown argument: {other}"));
                }
            }
        }
    }
    Ok(Args { opts, out, pm })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "stmbench: {} threads sweep, modes {}, structures {}, {} reps x {} ms{}",
        args.opts
            .threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        args.opts.modes.join(","),
        args.opts.structures.join(","),
        args.opts.reps,
        args.opts.duration.as_millis(),
        if args.opts.smoke { " (smoke)" } else { "" },
    );
    let bench_trace = BenchTrace::start(&args.pm, "stmbench");
    let report = run_sweep(&args.opts);
    if let Err(msg) = report.validate() {
        eprintln!("stmbench: report failed validation: {msg}");
        std::process::exit(1);
    }
    let noisy: Vec<NoisyPoint> = report
        .points
        .iter()
        .filter(|p| {
            postmortem::is_noisy(
                p.ops_per_sec.mean,
                p.ops_per_sec.stddev,
                args.pm.stddev_ratio,
            )
        })
        .map(|p| NoisyPoint {
            label: format!(
                "{}/{}/{}/{}/t{}",
                p.workload, p.mix, p.structure, p.mode, p.threads
            ),
            mean: p.ops_per_sec.mean,
            stddev: p.ops_per_sec.stddev,
        })
        .collect();
    bench_trace.finish(&args.pm, &noisy, "stmbench");
    let json = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("stmbench: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("stmbench: wrote {}", args.out.display());
}
