//! Topology sweep for the NUMA machine model (`topobench`).
//!
//! Sweeps co-location scenarios across mapping policies and socket
//! counts on the simulator's topology-extended machine model
//! (DESIGN.md §17): every process runs the RUBIC controller, and the
//! axis under test is *where* its threads land — placement-blind,
//! compact (fill sockets before spilling), scatter (round-robin
//! pinned), or adaptive-on-abort-rate.
//!
//! Axes:
//!
//! * **scenario** — co-located process sets with per-workload
//!   communication intensities (Intruder's shared session map makes it
//!   cross-socket-hostile at ~0.9; Vacation's four tables sit at ~0.5;
//!   the read-only tree is bandwidth-bound at 0).
//! * **mapping** ∈ {`blind`, `compact`, `scatter`, `adaptive`} —
//!   applied to every process in the scenario.
//! * **sockets** ∈ {1, 4} — `1` collapses the machine to the flat
//!   pre-topology model; every mapping must reproduce identical
//!   figures there ([`TopoBenchReport::validate`] enforces it).
//!
//! The headline check: in at least one co-location scenario on the
//! 4-socket machine, a placement-aware mapping must beat `blind`
//! beyond the repetition noise. The `topobench` binary writes
//! `BENCH_topo.json` (schema `rubic-topobench/v1`) only after
//! validation passes.

use rubic::controllers::{MappingPolicy, Policy};
use rubic_sim::{curves, run, Machine, ProcessSpec, SimConfig};

use crate::stmbench::Stat;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "rubic-topobench/v1";

/// Socket counts swept (1 = the flat-reproduction control).
const SOCKETS: [u32; 2] = [1, 4];

/// One co-located process in a scenario: name, scalability curve,
/// communication intensity.
struct Member {
    name: &'static str,
    curve: fn() -> rubic_sim::Curve,
    comm: f64,
}

/// A co-location scenario: a named set of processes, all under RUBIC.
struct Scenario {
    name: &'static str,
    members: &'static [Member],
}

/// The swept scenarios. Communication intensities follow the
/// workloads' shared-state footprints: Intruder funnels every packet
/// through one queue and one session map (0.9), Vacation spreads
/// reservations over four tables (0.5), the read-only tree never
/// writes shared state (0.0).
const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "intruder+vacation",
        members: &[
            Member {
                name: "intruder",
                curve: curves::intruder_like,
                comm: 0.9,
            },
            Member {
                name: "vacation",
                curve: curves::vacation_like,
                comm: 0.5,
            },
        ],
    },
    Scenario {
        name: "two-intruders",
        members: &[
            Member {
                name: "intruder-a",
                curve: curves::intruder_like,
                comm: 0.9,
            },
            Member {
                name: "intruder-b",
                curve: curves::intruder_like,
                comm: 0.9,
            },
        ],
    },
    Scenario {
        name: "readonly-solo",
        members: &[Member {
            name: "rbt-readonly",
            curve: curves::rbt_readonly,
            comm: 0.0,
        }],
    },
];

/// One swept configuration and its measurements.
#[derive(Debug, Clone)]
pub struct TopoBenchPoint {
    /// Scenario name.
    pub scenario: &'static str,
    /// Number of co-located processes in the scenario.
    pub processes: u32,
    /// Mapping policy applied to every process.
    pub mapping: &'static str,
    /// Socket count of the simulated machine.
    pub sockets: u32,
    /// Nash product of per-process mean speed-ups over the run.
    pub nash: Stat,
    /// Mean placement spread fraction, averaged over processes and
    /// reps (0 = packed on one socket).
    pub mean_spread: f64,
}

/// A complete sweep: harness parameters plus every measured point.
#[derive(Debug, Clone)]
pub struct TopoBenchReport {
    /// Repetitions (distinct noise seeds) per configuration.
    pub reps: u32,
    /// Simulated rounds per repetition.
    pub rounds: u64,
    /// Multiplicative measurement-noise amplitude.
    pub noise: f64,
    /// True when produced by the CI `--smoke` sweep.
    pub smoke: bool,
    /// One entry per (scenario, mapping, sockets) configuration.
    pub points: Vec<TopoBenchPoint>,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct TopoSweepOptions {
    /// Repetitions (distinct noise seeds) per configuration.
    pub reps: u32,
    /// Simulated rounds per repetition.
    pub rounds: u64,
    /// Noise amplitude (reps differ only by seed when > 0).
    pub noise: f64,
    /// Base RNG seed; rep `i` runs at `seed + i`.
    pub seed: u64,
    /// Reduced grid for CI schema validation.
    pub smoke: bool,
}

impl TopoSweepOptions {
    /// The full sweep: 1000-round runs, 5 seeds, 2% noise.
    #[must_use]
    pub fn full() -> Self {
        TopoSweepOptions {
            reps: 5,
            rounds: 1000,
            noise: 0.02,
            seed: 11,
            smoke: false,
        }
    }

    /// The sub-second CI sweep: short runs, 2 seeds. Validates schema
    /// and plumbing, not effect sizes beyond the validation margins.
    #[must_use]
    pub fn smoke() -> Self {
        TopoSweepOptions {
            reps: 2,
            rounds: 300,
            noise: 0.02,
            seed: 11,
            smoke: true,
        }
    }
}

/// Runs one (scenario, mapping, sockets, seed) cell and returns the
/// Nash product plus the process-averaged mean spread.
fn run_once(
    scenario: &Scenario,
    mapping: MappingPolicy,
    sockets: u32,
    opts: &TopoSweepOptions,
    rep: u32,
) -> (f64, f64) {
    let specs: Vec<ProcessSpec> = scenario
        .members
        .iter()
        .map(|m| {
            ProcessSpec::new(m.name, (m.curve)(), Policy::Rubic)
                .mapping(mapping)
                .comm_intensity(m.comm)
        })
        .collect();
    let mut cfg = SimConfig::paper(scenario.members.len() as u32)
        .with_rounds(opts.rounds)
        .with_noise(opts.noise, opts.seed + u64::from(rep));
    cfg.machine = Machine::paper().with_sockets(sockets);
    let result = run(&specs, &cfg);
    let spread = if result.processes.is_empty() {
        0.0
    } else {
        result.processes.iter().map(|p| p.mean_spread).sum::<f64>() / result.processes.len() as f64
    };
    (result.nash_product(), spread)
}

/// Runs the whole sweep, printing one progress line per configuration.
#[must_use]
pub fn run_sweep(opts: &TopoSweepOptions) -> TopoBenchReport {
    let mut points = Vec::new();
    for scenario in &SCENARIOS {
        for mapping in MappingPolicy::ALL {
            for sockets in SOCKETS {
                let mut nash = Vec::with_capacity(opts.reps as usize);
                let mut spread_sum = 0.0;
                for rep in 0..opts.reps {
                    let (n, s) = run_once(scenario, mapping, sockets, opts, rep);
                    nash.push(n);
                    spread_sum += s;
                }
                let point = TopoBenchPoint {
                    scenario: scenario.name,
                    processes: scenario.members.len() as u32,
                    mapping: mapping.label(),
                    sockets,
                    nash: Stat::from_samples(nash),
                    mean_spread: spread_sum / f64::from(opts.reps.max(1)),
                };
                eprintln!(
                    "  {:<18} {:<8} sockets={} nash {:>8.3} ± {:>6.3}  spread {:.3}",
                    point.scenario,
                    point.mapping,
                    point.sockets,
                    point.nash.mean,
                    point.nash.stddev,
                    point.mean_spread,
                );
                points.push(point);
            }
        }
    }
    TopoBenchReport {
        reps: opts.reps,
        rounds: opts.rounds,
        noise: opts.noise,
        smoke: opts.smoke,
        points,
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn json_stat(s: &Stat, indent: &str) -> String {
    let samples: Vec<String> = s.samples.iter().map(|&x| json_f64(x)).collect();
    format!(
        "{{\n{indent}  \"mean\": {},\n{indent}  \"stddev\": {},\n{indent}  \"samples\": [{}]\n{indent}}}",
        json_f64(s.mean),
        json_f64(s.stddev),
        samples.join(", "),
    )
}

impl TopoBenchReport {
    /// The point for a (scenario, mapping, sockets) cell, if swept.
    #[must_use]
    pub fn point(&self, scenario: &str, mapping: &str, sockets: u32) -> Option<&TopoBenchPoint> {
        self.points
            .iter()
            .find(|p| p.scenario == scenario && p.mapping == mapping && p.sockets == sockets)
    }

    /// Serialises the report as the documented `rubic-topobench/v1`
    /// JSON schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"harness\": {{\n    \"reps\": {},\n    \"rounds\": {},\n    \"noise\": {},\n    \"smoke\": {}\n  }},\n",
            self.reps,
            self.rounds,
            json_f64(self.noise),
            self.smoke,
        ));
        out.push_str("  \"results\": [\n");
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"scenario\": \"{}\",\n      \"processes\": {},\n      \"mapping\": \"{}\",\n      \"sockets\": {},\n      \"mean_spread\": {},\n      \"nash\": {}\n    }}",
                    p.scenario,
                    p.processes,
                    p.mapping,
                    p.sockets,
                    json_f64(p.mean_spread),
                    json_stat(&p.nash, "      "),
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Structural and semantic checks; the binary refuses to write a
    /// report that fails any of them:
    ///
    /// 1. non-empty grid, known axis values, finite positive Nash
    ///    products, sample counts matching `reps`;
    /// 2. **flat reproduction** — on the 1-socket machine every mapping
    ///    policy yields the same figures (placement cannot matter
    ///    there, so the topology extension must be inert);
    /// 3. **aware beats blind** — in at least one co-location scenario
    ///    on 4 sockets, some placement-aware mapping beats `blind` by
    ///    more than twice the combined sample stddev (and by ≥ 2%).
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("empty sweep: no configurations measured".into());
        }
        let scenario_names: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
        let mapping_names: Vec<&str> = MappingPolicy::ALL.iter().map(|m| m.label()).collect();
        for p in &self.points {
            let tag = format!("{}/{}/s{}", p.scenario, p.mapping, p.sockets);
            if !scenario_names.contains(&p.scenario) {
                return Err(format!("{tag}: unknown scenario"));
            }
            if !mapping_names.contains(&p.mapping) {
                return Err(format!("{tag}: unknown mapping"));
            }
            if !SOCKETS.contains(&p.sockets) {
                return Err(format!("{tag}: unknown socket count"));
            }
            if p.nash.samples.len() != self.reps as usize {
                return Err(format!(
                    "{tag}: nash has {} samples, expected {}",
                    p.nash.samples.len(),
                    self.reps
                ));
            }
            if !p.nash.mean.is_finite() || p.nash.mean <= 0.0 {
                return Err(format!("{tag}: nash {} out of range", p.nash.mean));
            }
            if !(0.0..=1.0).contains(&p.mean_spread) {
                return Err(format!("{tag}: spread {} out of range", p.mean_spread));
            }
        }
        // Flat reproduction: with one socket, placement must be inert —
        // identical seeds give identical runs whatever the mapping.
        for scenario in &scenario_names {
            let flat: Vec<&TopoBenchPoint> = self
                .points
                .iter()
                .filter(|p| p.scenario == *scenario && p.sockets == 1)
                .collect();
            for pair in flat.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if (a.nash.mean - b.nash.mean).abs() > 1e-9 * a.nash.mean.abs().max(1.0) {
                    return Err(format!(
                        "{scenario}: 1-socket figures differ across mappings \
                         ({} {} vs {} {}) — topology extension is not inert",
                        a.mapping, a.nash.mean, b.mapping, b.nash.mean
                    ));
                }
            }
        }
        // Aware beats blind, beyond noise, in some co-location scenario.
        let mut witnessed = false;
        for scenario in SCENARIOS.iter().filter(|s| s.members.len() > 1) {
            let Some(blind) = self.point(scenario.name, "blind", 4) else {
                continue;
            };
            for p in self
                .points
                .iter()
                .filter(|p| p.scenario == scenario.name && p.sockets == 4 && p.mapping != "blind")
            {
                let margin = 2.0 * (p.nash.stddev + blind.nash.stddev);
                if p.nash.mean > blind.nash.mean + margin && p.nash.mean > blind.nash.mean * 1.02 {
                    witnessed = true;
                }
            }
        }
        if !witnessed {
            return Err(
                "no co-location scenario where a placement-aware mapping beats blind \
                 beyond noise on 4 sockets"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_valid_json() {
        let opts = TopoSweepOptions::smoke();
        let report = run_sweep(&opts);
        report.validate().expect("smoke report must validate");
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"rubic-topobench/v1\""));
        assert!(json.contains("\"mapping\": \"adaptive\""));
        assert_eq!(
            report.points.len(),
            SCENARIOS.len() * MappingPolicy::ALL.len() * SOCKETS.len(),
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        let empty = TopoBenchReport {
            reps: 1,
            rounds: 10,
            noise: 0.0,
            smoke: true,
            points: Vec::new(),
        };
        assert!(empty.validate().is_err());

        let bad = TopoBenchReport {
            reps: 1,
            rounds: 10,
            noise: 0.0,
            smoke: true,
            points: vec![TopoBenchPoint {
                scenario: "intruder+vacation",
                processes: 2,
                mapping: "compact",
                sockets: 4,
                nash: Stat::from_samples(vec![0.0]),
                mean_spread: 0.0,
            }],
        };
        assert!(bad.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn one_socket_runs_are_mapping_invariant() {
        // The flat-reproduction invariant, checked directly: identical
        // nash products for every mapping on the 1-socket machine.
        let opts = TopoSweepOptions {
            reps: 1,
            rounds: 120,
            noise: 0.02,
            seed: 7,
            smoke: true,
        };
        let base = run_once(&SCENARIOS[0], MappingPolicy::Blind, 1, &opts, 0).0;
        for mapping in MappingPolicy::ALL {
            let (nash, _) = run_once(&SCENARIOS[0], mapping, 1, &opts, 0);
            assert!(
                (nash - base).abs() < 1e-12,
                "{}: {nash} != {base}",
                mapping.label()
            );
        }
    }
}
