//! The STM substrate's performance-trajectory harness (`stmbench`).
//!
//! Sweeps the three canonical workloads of the paper's evaluation
//! ({counter, rbtree, vacation}) across thread counts and an operation
//! mix axis, measuring committed operations per second and the abort
//! rate for each configuration, repeated `reps` times so every number
//! carries a mean ± sample stddev.
//!
//! The `stmbench` binary writes the result as `BENCH_stm.json` at the
//! repository root — the seed of the perf trajectory later PRs are
//! judged against. The schema (`rubic-stmbench/v3`) is documented in
//! the README's "Benchmarking" section and validated by
//! [`BenchReport::validate`], which the binary runs before writing so
//! a malformed report can never be committed silently.
//!
//! Since v2 every point carries a protocol **mode**: `sv` is the
//! classic single-version validated protocol; `mvcc` (swept only when
//! built with `--features mvcc`) runs the same workload on an
//! `Stm::builder().mvcc(true)` runtime, where declared read-only
//! transactions pin snapshots and commit abort-free. The per-point
//! `ro_commits`/`ro_aborts` totals make the abort-freedom claim
//! measurable: an mvcc rbtree read-mix row must show `ro_aborts: 0`.
//!
//! Since v3 every point also carries a **structure**: the ordered-map
//! backend behind the workload. `snapshot` is the single-cell
//! persistent tree (`TMap`: every update conflicts with every update);
//! `btree` is the per-node transactional B-tree (`TBTreeMap`: a
//! transaction conflicts only on the O(log n) path it touched). The
//! axis is swept for the two map-backed workloads (rbtree, vacation);
//! counter has no map and is pinned to `snapshot`. The committed A/B
//! is the gate for the per-node design: it must beat the snapshot cell
//! on the write-heavy mix at t ≥ 4 and stay within noise on the
//! read-dominated mixes.
//!
//! Mix mapping per workload (the axis is "how much write conflict"):
//!
//! | workload | read-only | read-heavy | write-heavy |
//! |---|---|---|---|
//! | counter | — | striped over 1024 stripes (~conflict-free) | one shared counter (maximal conflict) |
//! | rbtree | 100 % look-ups (§4.6) | paper mix, 98 % look-ups | 50/25/25 lookup/insert/delete |
//! | vacation | — | STAMP `vacation-low` | STAMP `vacation-high` |

use std::time::Duration;

use rubic::controllers::Fixed;
use rubic::runtime::{MalleablePool, PoolConfig, Workload};
use rubic::stm::Stm;
use rubic::workloads::mapapi::{BTreeFamily, SnapshotFamily};
use rubic::workloads::rbtree::{OpMix, RbTreeConfig, RbTreeWorkloadOn};
use rubic::workloads::vacation::{VacationConfig, VacationWorkloadOn};
use rubic::workloads::{ConflictCounter, StripedCounter};

/// Schema identifier written into every report.
pub const SCHEMA: &str = "rubic-stmbench/v3";

/// Protocol modes this build can sweep: the single-version validated
/// protocol always, plus mvcc snapshot mode when compiled with
/// `--features mvcc`.
#[must_use]
pub fn available_modes() -> Vec<&'static str> {
    if cfg!(feature = "mvcc") {
        vec!["sv", "mvcc"]
    } else {
        vec!["sv"]
    }
}

/// Mean ± sample standard deviation over a set of repetitions.
#[derive(Debug, Clone)]
pub struct Stat {
    /// Arithmetic mean of `samples`.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// The raw per-repetition measurements.
    pub samples: Vec<f64>,
}

impl Stat {
    /// Summarises `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Stat needs at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let stddev = if samples.len() < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        Stat {
            mean,
            stddev,
            samples,
        }
    }
}

/// One swept configuration and its measurements.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Workload family: `counter`, `rbtree`, or `vacation`.
    pub workload: &'static str,
    /// Operation mix: `read-only`, `read-heavy` or `write-heavy`.
    pub mix: &'static str,
    /// Ordered-map backend: `snapshot` (single-cell persistent tree)
    /// or `btree` (per-node B-tree). Always `snapshot` for workloads
    /// without a map axis (counter).
    pub structure: &'static str,
    /// Protocol mode: `sv` (single-version) or `mvcc` (snapshot mode).
    pub mode: &'static str,
    /// Worker threads (fixed parallelism level for the whole run).
    pub threads: u32,
    /// Committed transactions per second.
    pub ops_per_sec: Stat,
    /// `aborts / (commits + aborts)` over the run.
    pub abort_rate: Stat,
    /// Read-only commits summed across all repetitions.
    pub ro_commits: u64,
    /// Read-only aborted attempts summed across all repetitions. The
    /// mvcc abort-freedom claim shows up here as an exact `0`.
    pub ro_aborts: u64,
}

/// A complete sweep: harness parameters plus every measured point.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Repetitions per configuration.
    pub reps: u32,
    /// Measured duration per repetition, in milliseconds.
    pub duration_ms: u64,
    /// True when produced by the ~1 s `--smoke` sweep (reduced grid;
    /// not comparable with full runs).
    pub smoke: bool,
    /// `std::thread::available_parallelism` on the measuring host.
    pub hw_threads: u32,
    /// One entry per (workload, mix, structure, mode, threads)
    /// configuration.
    pub points: Vec<BenchPoint>,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Repetitions per configuration.
    pub reps: u32,
    /// Measured duration per repetition.
    pub duration: Duration,
    /// Thread counts to sweep.
    pub threads: Vec<u32>,
    /// Protocol modes to sweep (subset of [`available_modes`]).
    pub modes: Vec<&'static str>,
    /// Map structures to sweep (subset of [`STRUCTURES`]); workloads
    /// without a map axis always run once as `snapshot`.
    pub structures: Vec<&'static str>,
    /// Reduced grid for CI schema validation.
    pub smoke: bool,
}

impl SweepOptions {
    /// The full sweep: {1,2,4,8,16} threads, 3 reps, 300 ms each,
    /// every protocol mode the build supports, both map structures.
    #[must_use]
    pub fn full() -> Self {
        SweepOptions {
            reps: 3,
            duration: Duration::from_millis(300),
            threads: vec![1, 2, 4, 8, 16],
            modes: available_modes(),
            structures: STRUCTURES.to_vec(),
            smoke: false,
        }
    }

    /// The ~1 s CI sweep: {1,2} threads, 1 rep, 25 ms each, small
    /// workload instances. Validates schema and plumbing, not perf.
    #[must_use]
    pub fn smoke() -> Self {
        SweepOptions {
            reps: 1,
            duration: Duration::from_millis(25),
            threads: vec![1, 2],
            modes: available_modes(),
            structures: STRUCTURES.to_vec(),
            smoke: true,
        }
    }
}

/// The benchmarked grid axes.
const WORKLOADS: [&str; 3] = ["counter", "rbtree", "vacation"];
const MIXES: [&str; 3] = ["read-only", "read-heavy", "write-heavy"];
const MODES: [&str; 2] = ["sv", "mvcc"];
/// The map-structure axis (v3): `snapshot` is the single-cell `TMap`,
/// `btree` the per-node `TBTreeMap`.
pub const STRUCTURES: [&str; 2] = ["snapshot", "btree"];

/// The mixes a workload is swept over. Only rbtree has a meaningful
/// 100 %-read configuration (the paper's §4.6 convergence workload).
fn mixes_for(workload: &str) -> &'static [&'static str] {
    match workload {
        "rbtree" => &["read-only", "read-heavy", "write-heavy"],
        _ => &["read-heavy", "write-heavy"],
    }
}

/// The structures a workload is swept over: both map backends for the
/// map-backed workloads, pinned `snapshot` for counter (no map).
fn structures_for(workload: &str) -> &'static [&'static str] {
    match workload {
        "rbtree" | "vacation" => &["snapshot", "btree"],
        _ => &["snapshot"],
    }
}

/// Builds the runtime for one protocol mode. `mode` can only be
/// `"mvcc"` when the feature is compiled in (the CLI and
/// [`SweepOptions`] both draw from [`available_modes`]).
fn make_stm(mode: &str) -> Stm {
    #[cfg(feature = "mvcc")]
    if mode == "mvcc" {
        return Stm::builder().mvcc(true).build();
    }
    debug_assert_eq!(mode, "sv", "mode {mode} not available in this build");
    Stm::default()
}

/// Per-repetition measurements of one configuration.
struct RunSample {
    ops_per_sec: f64,
    abort_rate: f64,
    ro_commits: u64,
    ro_aborts: u64,
}

/// Runs one (workload, mix, structure, mode, threads) repetition.
fn run_once(
    workload: &'static str,
    mix: &'static str,
    structure: &'static str,
    mode: &'static str,
    threads: u32,
    opts: &SweepOptions,
) -> RunSample {
    let stm = make_stm(mode);
    match (workload, mix) {
        ("counter", "read-heavy") => {
            let stripes = if opts.smoke { 64 } else { 1024 };
            drive(
                StripedCounter::new(stripes, stm.clone()),
                &stm,
                threads,
                opts,
            )
        }
        ("counter", "write-heavy") => drive(ConflictCounter::new(stm.clone()), &stm, threads, opts),
        ("rbtree", m) => {
            let mix = match m {
                "read-only" => OpMix::read_only(),
                "read-heavy" => OpMix::paper(),
                _ => OpMix::write_heavy(),
            };
            let cfg = if opts.smoke {
                RbTreeConfig::small().with_mix(mix)
            } else {
                RbTreeConfig {
                    initial_size: 4096,
                    key_range: 8192,
                    mix,
                    seed: 0x5EED_BEAC,
                }
            };
            if structure == "btree" {
                drive(
                    RbTreeWorkloadOn::<BTreeFamily>::new(cfg, stm.clone()),
                    &stm,
                    threads,
                    opts,
                )
            } else {
                drive(
                    RbTreeWorkloadOn::<SnapshotFamily>::new(cfg, stm.clone()),
                    &stm,
                    threads,
                    opts,
                )
            }
        }
        ("vacation", m) => {
            let relations = if opts.smoke { 64 } else { 256 };
            let cfg = if m == "read-heavy" {
                VacationConfig::low_contention(relations)
            } else {
                VacationConfig::high_contention(relations)
            };
            if structure == "btree" {
                drive(
                    VacationWorkloadOn::<BTreeFamily>::new(cfg, stm.clone()),
                    &stm,
                    threads,
                    opts,
                )
            } else {
                drive(
                    VacationWorkloadOn::<SnapshotFamily>::new(cfg, stm.clone()),
                    &stm,
                    threads,
                    opts,
                )
            }
        }
        other => unreachable!("unknown configuration {other:?}"),
    }
}

/// Runs `workload` on a fixed-level pool for the configured duration.
/// `stm` is a handle to the same runtime the workload uses, so the
/// read-only counters can be measured as a delta around the run
/// (excluding any setup transactions the constructor issued).
fn drive<W: Workload>(workload: W, stm: &Stm, threads: u32, opts: &SweepOptions) -> RunSample {
    let before = stm.stats().snapshot();
    let pool = MalleablePool::start(
        PoolConfig::new(threads)
            .initial_level(threads)
            .monitor_period(Duration::from_millis(5))
            .name("stmbench"),
        workload,
        Box::new(Fixed::new(threads, threads)),
    );
    rubic_sync::thread::sleep(opts.duration);
    let report = pool.stop();
    let delta = stm.stats().snapshot().delta_since(&before);
    RunSample {
        ops_per_sec: report.throughput(),
        abort_rate: report.abort_rate(),
        ro_commits: delta.ro_commits,
        ro_aborts: delta.ro_aborts,
    }
}

/// Runs the whole sweep, printing one progress line per configuration.
#[must_use]
pub fn run_sweep(opts: &SweepOptions) -> BenchReport {
    let mut points = Vec::new();
    for workload in WORKLOADS {
        for &mix in mixes_for(workload) {
            for &structure in structures_for(workload) {
                if !opts.structures.contains(&structure) && structures_for(workload).len() > 1 {
                    continue;
                }
                for &mode in &opts.modes {
                    for &threads in &opts.threads {
                        let mut ops = Vec::with_capacity(opts.reps as usize);
                        let mut aborts = Vec::with_capacity(opts.reps as usize);
                        let mut ro_commits = 0u64;
                        let mut ro_aborts = 0u64;
                        for _ in 0..opts.reps {
                            let s = run_once(workload, mix, structure, mode, threads, opts);
                            ops.push(s.ops_per_sec);
                            aborts.push(s.abort_rate);
                            ro_commits += s.ro_commits;
                            ro_aborts += s.ro_aborts;
                        }
                        let point = BenchPoint {
                            workload,
                            mix,
                            structure,
                            mode,
                            threads,
                            ops_per_sec: Stat::from_samples(ops),
                            abort_rate: Stat::from_samples(aborts),
                            ro_commits,
                            ro_aborts,
                        };
                        eprintln!(
                            "  {workload:>8} {mix:<11} {structure:<8} {mode:<4} t={threads:<2} {:>12.0} ops/s ± {:>6.0}  abort {:.1}%  ro {}/{}",
                            point.ops_per_sec.mean,
                            point.ops_per_sec.stddev,
                            point.abort_rate.mean * 100.0,
                            point.ro_commits,
                            point.ro_aborts,
                        );
                        points.push(point);
                    }
                }
            }
        }
    }
    BenchReport {
        reps: opts.reps,
        duration_ms: opts.duration.as_millis() as u64,
        smoke: opts.smoke,
        hw_threads: rubic_sync::thread::available_parallelism().map_or(1, |n| n.get() as u32),
        points,
    }
}

fn json_f64(x: f64) -> String {
    // JSON has no NaN/Infinity literal; a broken measurement must not
    // produce an unparseable file.
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn json_stat(s: &Stat, indent: &str) -> String {
    let samples: Vec<String> = s.samples.iter().map(|&x| json_f64(x)).collect();
    format!(
        "{{\n{indent}  \"mean\": {},\n{indent}  \"stddev\": {},\n{indent}  \"samples\": [{}]\n{indent}}}",
        json_f64(s.mean),
        json_f64(s.stddev),
        samples.join(", "),
    )
}

impl BenchReport {
    /// Serialises the report as the documented `rubic-stmbench/v3`
    /// JSON schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"harness\": {{\n    \"reps\": {},\n    \"duration_ms\": {},\n    \"smoke\": {},\n    \"hw_threads\": {}\n  }},\n",
            self.reps, self.duration_ms, self.smoke, self.hw_threads,
        ));
        out.push_str("  \"results\": [\n");
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"workload\": \"{}\",\n      \"mix\": \"{}\",\n      \"structure\": \"{}\",\n      \"mode\": \"{}\",\n      \"threads\": {},\n      \"ops_per_sec\": {},\n      \"abort_rate\": {},\n      \"ro_commits\": {},\n      \"ro_aborts\": {}\n    }}",
                    p.workload,
                    p.mix,
                    p.structure,
                    p.mode,
                    p.threads,
                    json_stat(&p.ops_per_sec, "      "),
                    json_stat(&p.abort_rate, "      "),
                    p.ro_commits,
                    p.ro_aborts,
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Structural sanity checks: non-empty grid, all means finite and
    /// non-negative, abort rates within [0, 1], sample counts matching
    /// `reps`, axes drawn from the documented sets (including the
    /// per-workload mix/structure restrictions). The binary refuses to
    /// write a report that fails these.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("empty sweep: no configurations measured".into());
        }
        for p in &self.points {
            let tag = format!("{}/{}/{}/t{}", p.workload, p.mix, p.structure, p.threads);
            if !WORKLOADS.contains(&p.workload) {
                return Err(format!("{tag}: unknown workload"));
            }
            if !MIXES.contains(&p.mix) {
                return Err(format!("{tag}: unknown mix"));
            }
            if !mixes_for(p.workload).contains(&p.mix) {
                return Err(format!("{tag}: mix {} not swept for {}", p.mix, p.workload));
            }
            if !STRUCTURES.contains(&p.structure) {
                return Err(format!("{tag}: unknown structure {}", p.structure));
            }
            if !structures_for(p.workload).contains(&p.structure) {
                return Err(format!(
                    "{tag}: structure {} not swept for {}",
                    p.structure, p.workload
                ));
            }
            if !MODES.contains(&p.mode) {
                return Err(format!("{tag}: unknown mode {}", p.mode));
            }
            if p.threads == 0 {
                return Err(format!("{tag}: zero threads"));
            }
            for (name, stat) in [
                ("ops_per_sec", &p.ops_per_sec),
                ("abort_rate", &p.abort_rate),
            ] {
                if stat.samples.len() != self.reps as usize {
                    return Err(format!(
                        "{tag}: {name} has {} samples, expected {}",
                        stat.samples.len(),
                        self.reps
                    ));
                }
                if !stat.mean.is_finite() || stat.mean < 0.0 {
                    return Err(format!("{tag}: {name} mean {} out of range", stat.mean));
                }
            }
            if p.ops_per_sec.mean <= 0.0 {
                return Err(format!("{tag}: zero throughput (harness stall?)"));
            }
            if p.abort_rate.mean > 1.0 {
                return Err(format!("{tag}: abort rate {} > 1", p.abort_rate.mean));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_mean_and_stddev() {
        let s = Stat::from_samples(vec![1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        let single = Stat::from_samples(vec![5.0]);
        assert_eq!(single.stddev, 0.0);
    }

    #[test]
    fn smoke_sweep_produces_valid_json() {
        let mut opts = SweepOptions::smoke();
        // Keep the unit test well under a second.
        opts.threads = vec![1];
        opts.duration = Duration::from_millis(5);
        let report = run_sweep(&opts);
        report.validate().expect("smoke report must validate");
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"rubic-stmbench/v3\""));
        assert!(json.contains("\"workload\": \"rbtree\""));
        assert!(json.contains("\"mode\": \"sv\""));
        assert!(json.contains("\"structure\": \"snapshot\""));
        assert!(json.contains("\"structure\": \"btree\""));
        // counter 2 mixes × 1 structure + rbtree 3 × 2 + vacation 2 × 2.
        let expected = 12 * available_modes().len();
        assert_eq!(
            report.points.len(),
            expected,
            "per-workload mix × structure grid at 1 level"
        );
        // Balanced braces/brackets — cheap structural check without a
        // JSON parser in the dependency tree.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn structure_filter_restricts_map_workloads_only() {
        let mut opts = SweepOptions::smoke();
        opts.threads = vec![1];
        opts.duration = Duration::from_millis(5);
        opts.structures = vec!["btree"];
        opts.modes = vec!["sv"];
        let report = run_sweep(&opts);
        report.validate().expect("filtered report must validate");
        // counter still runs (pinned snapshot); rbtree/vacation only btree.
        assert!(report
            .points
            .iter()
            .all(|p| p.structure == "btree" || p.workload == "counter"));
        assert!(report.points.iter().any(|p| p.workload == "counter"));
    }

    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        let empty = BenchReport {
            reps: 1,
            duration_ms: 1,
            smoke: true,
            hw_threads: 1,
            points: Vec::new(),
        };
        assert!(empty.validate().is_err());

        let bad = BenchReport {
            reps: 1,
            duration_ms: 1,
            smoke: true,
            hw_threads: 1,
            points: vec![BenchPoint {
                workload: "counter",
                mix: "read-heavy",
                structure: "snapshot",
                mode: "sv",
                threads: 1,
                ops_per_sec: Stat::from_samples(vec![100.0]),
                abort_rate: Stat::from_samples(vec![1.5]),
                ro_commits: 0,
                ro_aborts: 0,
            }],
        };
        assert!(bad.validate().unwrap_err().contains("abort rate"));

        let unknown_mode = BenchReport {
            reps: 1,
            duration_ms: 1,
            smoke: true,
            hw_threads: 1,
            points: vec![BenchPoint {
                workload: "counter",
                mix: "read-heavy",
                structure: "snapshot",
                mode: "hybrid",
                threads: 1,
                ops_per_sec: Stat::from_samples(vec![100.0]),
                abort_rate: Stat::from_samples(vec![0.0]),
                ro_commits: 0,
                ro_aborts: 0,
            }],
        };
        assert!(unknown_mode.validate().unwrap_err().contains("mode"));

        // Structure restrictions: counter must not claim a btree row,
        // and only rbtree sweeps the read-only mix.
        let counter_btree = BenchReport {
            reps: 1,
            duration_ms: 1,
            smoke: true,
            hw_threads: 1,
            points: vec![BenchPoint {
                workload: "counter",
                mix: "read-heavy",
                structure: "btree",
                mode: "sv",
                threads: 1,
                ops_per_sec: Stat::from_samples(vec![100.0]),
                abort_rate: Stat::from_samples(vec![0.0]),
                ro_commits: 0,
                ro_aborts: 0,
            }],
        };
        assert!(counter_btree
            .validate()
            .unwrap_err()
            .contains("not swept for counter"));

        let vacation_ro = BenchReport {
            reps: 1,
            duration_ms: 1,
            smoke: true,
            hw_threads: 1,
            points: vec![BenchPoint {
                workload: "vacation",
                mix: "read-only",
                structure: "snapshot",
                mode: "sv",
                threads: 1,
                ops_per_sec: Stat::from_samples(vec![100.0]),
                abort_rate: Stat::from_samples(vec![0.0]),
                ro_commits: 0,
                ro_aborts: 0,
            }],
        };
        assert!(vacation_ro
            .validate()
            .unwrap_err()
            .contains("not swept for vacation"));
    }

    #[cfg(feature = "mvcc")]
    #[test]
    fn mvcc_smoke_rows_are_abort_free_for_read_only() {
        // One tiny rbtree read-heavy mvcc rep per structure: the
        // declared read-only lookups must commit through the snapshot
        // path with zero read-only aborts on both map backends.
        let mut opts = SweepOptions::smoke();
        opts.threads = vec![2];
        opts.duration = Duration::from_millis(10);
        for structure in STRUCTURES {
            let s = run_once("rbtree", "read-heavy", structure, "mvcc", 2, &opts);
            assert!(
                s.ro_commits > 0,
                "read-only lookups should have run ({structure})"
            );
            assert_eq!(
                s.ro_aborts, 0,
                "mvcc snapshots must not abort ({structure})"
            );
        }
    }
}
