//! Benchmark and figure-regeneration harness for the RUBIC
//! reproduction.
//!
//! Every table and figure of the paper's evaluation section has a
//! regenerator in [`figures`], keyed by the paper's numbering; the
//! `figures` binary drives them (`cargo run -p rubic-bench --bin
//! figures -- --all`) and writes CSV series plus readable text tables.
//! Design-choice ablations live in [`ablations`]. Criterion
//! microbenchmarks (`benches/`) cover the substrate layers: STM
//! primitives, controller decision cost, workload tasks, pool gating,
//! and simulation throughput.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod extensions;
pub mod figures;
pub mod invivo;
pub mod poolbench;
pub mod postmortem;
pub mod stmbench;
pub mod topobench;

/// A renderable figure/table: labelled rows of numeric columns.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier matching the paper ("fig7a", "fig10c", ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers; `rows[i].1.len() == columns.len()` for all rows.
    pub columns: Vec<String>,
    /// `(row label, values)` pairs.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-form notes (expected paper shape, measured summary, ...).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: Vec<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push((label.into(), values));
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Looks up a value by row label and column header.
    #[must_use]
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, values) = self.rows.iter().find(|(label, _)| label == row)?;
        values.get(c).copied()
    }

    /// Renders an aligned text table with the notes below.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([8])
            .max()
            .unwrap_or(8);
        let col_w = 12usize;
        out.push_str(&format!("{:label_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" {c:>col_w$}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for v in values {
                out.push_str(&format!(" {v:>col_w$.4}"));
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (label column first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(&csv_escape(c));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&csv_escape(label));
            for v in values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "test", vec!["a".into(), "b".into()]);
        f.push_row("r1", vec![1.0, 2.0]);
        f.push_row("r2", vec![3.5, 4.25]);
        f.note("hello");
        f
    }

    #[test]
    fn value_lookup() {
        let f = sample();
        assert_eq!(f.value("r1", "b"), Some(2.0));
        assert_eq!(f.value("r2", "a"), Some(3.5));
        assert_eq!(f.value("r3", "a"), None);
        assert_eq!(f.value("r1", "c"), None);
    }

    #[test]
    fn text_contains_everything() {
        let t = sample().render_text();
        assert!(t.contains("figX"));
        assert!(t.contains("r2"));
        assert!(t.contains("4.2500"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "label,a,b");
        assert_eq!(lines[1], "r1,1,2");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut f = Figure::new("f", "t", vec!["a".into()]);
        f.push_row("r", vec![1.0, 2.0]);
    }
}
