//! In-vivo measurements: the real STM + malleable pool on this host,
//! complementing the simulator figures (regenerate with
//! `figures --in-vivo`).
//!
//! These are the Fig. 1 / Fig. 6 measurement procedure executed for
//! real — fixed-level sweeps over the actual workloads — plus a live
//! adaptive run per policy. Absolute numbers depend entirely on the
//! host (on a single-core machine the curves are flat and the right
//! level is ~1); the point is that the full measurement pipeline the
//! paper used exists and runs.

use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;

use crate::Figure;

/// Fixed-level throughput sweep of the three paper workloads on this
/// host (Fig. 6's procedure, in vivo).
#[must_use]
pub fn scalability_sweeps(per_level: Duration, max_level: u32) -> Figure {
    let levels: Vec<u32> = (1..=max_level).collect();
    let mut f = Figure::new(
        "invivo-fig6",
        format!("Measured throughput (tasks/s) at fixed levels 1..={max_level} on this host"),
        vec!["RBT".into(), "Vacation".into(), "Intruder".into()],
    );

    let rbt = Arc::new(RbTreeWorkload::new(RbTreeConfig::small(), Stm::default()));
    let vac = Arc::new(VacationWorkload::new(
        VacationConfig::low_contention(256),
        Stm::default(),
    ));
    let intr = Arc::new(IntruderWorkload::new(
        IntruderConfig::paper(),
        Stm::default(),
    ));

    let rbt_pts = scalability_sweep(rbt, &levels, per_level);
    let vac_pts = scalability_sweep(vac, &levels, per_level);
    let intr_pts = scalability_sweep(intr, &levels, per_level);

    for idx in 0..levels.len() {
        let (level, rbt_thr) = rbt_pts[idx];
        f.push_row(
            format!("{level}"),
            vec![rbt_thr, vac_pts[idx].1, intr_pts[idx].1],
        );
    }
    f.note(format!(
        "host parallelism: {} (flat curves and a ~1-thread optimum are correct on 1 CPU)",
        rubic_sync::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    ));
    f
}

/// One adaptive run per policy on the RBT workload: measured
/// throughput, mean level, the STM abort rate, and the abort count
/// attributed to each [`AbortReason`] (the same attribution the trace
/// feature's event stream carries, available here without it).
#[must_use]
pub fn adaptive_runs(duration: Duration) -> Figure {
    let mut columns = vec!["tasks/s".into(), "mean level".into(), "abort %".into()];
    columns.extend(
        rubic::stm::AbortReason::ALL
            .iter()
            .map(|r| format!("aborts:{}", r.name())),
    );
    let mut f = Figure::new(
        "invivo-adaptive",
        "Live tuned runs on the RBT workload (this host)",
        columns,
    );
    let hw = rubic_sync::thread::available_parallelism().map_or(1, std::num::NonZero::get) as u32;
    let pool = (hw * 2).max(4);
    for policy in [Policy::Rubic, Policy::Ebs, Policy::F2c2, Policy::Greedy] {
        let stm = Stm::default();
        let workload = RbTreeWorkload::new(RbTreeConfig::small(), stm.clone());
        let spec =
            TenantSpec::new(policy.label(), pool, policy).monitor_period(Duration::from_millis(10));
        let report = run_tenant(Tenant::new(spec, workload), duration);
        let mut values = vec![
            report.throughput(),
            report.mean_level(),
            stm.stats().abort_rate() * 100.0,
        ];
        #[allow(clippy::cast_precision_loss)]
        values.extend(stm.stats().aborts_by_reason().iter().map(|&n| n as f64));
        f.push_row(policy.label(), values);
    }
    f.note("pool = 2x hardware contexts; adaptive policies should hover near the host's real parallelism");
    f
}

/// All in-vivo measurements, sized for a quick run.
#[must_use]
pub fn all(quick: bool) -> Vec<Figure> {
    let (per_level, max_level, duration) = if quick {
        (Duration::from_millis(120), 3, Duration::from_millis(400))
    } else {
        (Duration::from_millis(400), 8, Duration::from_secs(2))
    };
    vec![
        scalability_sweeps(per_level, max_level),
        adaptive_runs(duration),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_positive_throughput() {
        let f = scalability_sweeps(Duration::from_millis(40), 2);
        assert_eq!(f.rows.len(), 2);
        for (label, values) in &f.rows {
            for v in values {
                assert!(*v > 0.0, "level {label}: zero throughput");
            }
        }
    }

    #[test]
    fn adaptive_runs_cover_policies() {
        let f = adaptive_runs(Duration::from_millis(80));
        assert_eq!(f.rows.len(), 4);
        assert!(f.value("RUBIC", "tasks/s").unwrap() > 0.0);
        assert!(f.value("Greedy", "mean level").unwrap() >= 1.0);
        // One attribution column per abort reason, all present per row.
        assert_eq!(f.columns.len(), 3 + rubic::stm::AbortReason::ALL.len());
        assert!(f.value("RUBIC", "aborts:read-validation").unwrap() >= 0.0);
    }
}
