//! The pool's task-distribution harness (`poolbench`).
//!
//! Compares the two queue backends of `rubic-runtime` — the single
//! shared channel ([`ChannelWorkload`]) and the sharded work-stealing
//! queues ([`ShardedWorkload`]) — across worker counts, task grains and
//! controllers. Each measured point drains a fixed number of items
//! through a malleable pool and reports items per second of wall time,
//! repeated `reps` times for a mean ± sample stddev.
//!
//! Axes:
//!
//! * **queue** ∈ {`channel`, `sharded`} — the backend under test.
//! * **task** ∈ {`tiny`, `stm-txn`} — `tiny` is a handful of ALU ops
//!   (queue overhead dominates, the case sharding targets); `stm-txn`
//!   runs one striped-counter STM transaction per item (real work
//!   amortizes queue costs).
//! * **workers** ∈ {1, 2, 4, 8, 16} by default.
//! * **controller** ∈ {`fixed`, `rubic`} — a pinned level versus the
//!   paper's controller moving the level mid-drain.
//!
//! The `poolbench` binary writes `BENCH_pool.json` (schema
//! `rubic-poolbench/v1`) after [`PoolBenchReport::validate`] passes —
//! same contract as `stmbench`: a malformed report is never written.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rubic::controllers::{Controller, Fixed, Rubic, RubicConfig};
use rubic::runtime::{ChannelWorkload, MalleablePool, PoolConfig, ShardedWorkload};
use rubic::stm::{Stm, TVar};

use crate::stmbench::Stat;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "rubic-poolbench/v1";

/// The benchmarked grid axes.
const QUEUES: [&str; 2] = ["channel", "sharded"];
const TASKS: [&str; 2] = ["tiny", "stm-txn"];
const CONTROLLERS: [&str; 2] = ["fixed", "rubic"];

/// Queue capacity used by both backends.
const CAPACITY: usize = 1024;

/// One swept configuration and its measurement.
#[derive(Debug, Clone)]
pub struct PoolBenchPoint {
    /// Queue backend: `channel` or `sharded`.
    pub queue: &'static str,
    /// Task grain: `tiny` or `stm-txn`.
    pub task: &'static str,
    /// Controller driving the level: `fixed` or `rubic`.
    pub controller: &'static str,
    /// Pool size (and fixed level / RUBIC max level).
    pub workers: u32,
    /// Items drained per second of wall time.
    pub ops_per_sec: Stat,
}

/// A complete sweep: harness parameters plus every measured point.
#[derive(Debug, Clone)]
pub struct PoolBenchReport {
    /// Repetitions per configuration.
    pub reps: u32,
    /// Items drained per repetition for `tiny` tasks.
    pub items_tiny: u64,
    /// Items drained per repetition for `stm-txn` tasks.
    pub items_stm: u64,
    /// True when produced by the ~1 s `--smoke` sweep.
    pub smoke: bool,
    /// `std::thread::available_parallelism` on the measuring host.
    pub hw_threads: u32,
    /// One entry per (queue, task, controller, workers) configuration.
    pub points: Vec<PoolBenchPoint>,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct PoolSweepOptions {
    /// Repetitions per configuration.
    pub reps: u32,
    /// Items per repetition for `tiny` tasks.
    pub items_tiny: u64,
    /// Items per repetition for `stm-txn` tasks.
    pub items_stm: u64,
    /// Worker counts to sweep.
    pub workers: Vec<u32>,
    /// Reduced grid for CI schema validation.
    pub smoke: bool,
}

impl PoolSweepOptions {
    /// The full sweep: {1,2,4,8,16} workers, 5 reps.
    #[must_use]
    pub fn full() -> Self {
        PoolSweepOptions {
            reps: 5,
            items_tiny: 60_000,
            items_stm: 12_000,
            workers: vec![1, 2, 4, 8, 16],
            smoke: false,
        }
    }

    /// The ~1 s CI sweep: {1,2} workers, 1 rep, small batches.
    /// Validates schema and plumbing, not perf.
    #[must_use]
    pub fn smoke() -> Self {
        PoolSweepOptions {
            reps: 1,
            items_tiny: 2_000,
            items_stm: 500,
            workers: vec![1, 2],
            smoke: true,
        }
    }
}

fn make_controller(controller: &'static str, workers: u32) -> Box<dyn Controller> {
    match controller {
        "fixed" => Box::new(Fixed::new(workers, workers)),
        "rubic" => Box::new(Rubic::new(RubicConfig::default(), workers)),
        other => unreachable!("unknown controller {other}"),
    }
}

/// A few ALU ops — cheap enough that per-item queue overhead dominates.
fn tiny_task(n: u64) {
    std::hint::black_box(n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ n);
}

/// One STM transaction per item: add into a striped counter (stripes
/// sized so aborts stay rare and the measurement tracks queue + STM
/// fixed costs, not contention).
fn stm_task(stm: &Stm, stripes: &[TVar<u64>], n: u64) {
    let var = &stripes[(n as usize) % stripes.len()];
    stm.atomically(|tx| {
        let v = tx.read(var)?;
        tx.write(var, v.wrapping_add(n))
    });
}

/// Drives `items` numbered tasks through a pool over the given queue
/// backend and returns items per second of wall time (send → drained).
fn run_once(
    queue: &'static str,
    task: &'static str,
    controller: &'static str,
    workers: u32,
    items: u64,
) -> f64 {
    let stm = Arc::new(Stm::default());
    let stripes: Arc<Vec<TVar<u64>>> = Arc::new((0..256).map(|_| TVar::new(0)).collect());
    let handler = move |n: u64| match task {
        "tiny" => tiny_task(n),
        _ => stm_task(&stm, &stripes, n),
    };
    let cfg = PoolConfig::new(workers)
        .initial_level(workers)
        .monitor_period(Duration::from_millis(5))
        .name("poolbench");
    match queue {
        "channel" => {
            let (workload, tx) = ChannelWorkload::new(CAPACITY, handler);
            let handle = workload.handle();
            let pool = MalleablePool::start(cfg, workload, make_controller(controller, workers));
            let start = Instant::now();
            let producer = rubic_sync::thread::spawn(move || {
                for n in 0..items {
                    tx.send(n).unwrap();
                }
            });
            producer.join().unwrap();
            handle.wait_drained();
            let elapsed = start.elapsed();
            let _ = pool.stop();
            assert_eq!(handle.processed(), items, "channel lost items");
            items as f64 / elapsed.as_secs_f64()
        }
        "sharded" => {
            let (workload, tx) = ShardedWorkload::new(workers as usize, CAPACITY, handler);
            let handle = workload.handle();
            let pool = MalleablePool::start(cfg, workload, make_controller(controller, workers));
            let start = Instant::now();
            let producer = rubic_sync::thread::spawn(move || {
                tx.send_batch(0..items).unwrap();
            });
            producer.join().unwrap();
            handle.wait_drained();
            let elapsed = start.elapsed();
            let _ = pool.stop();
            assert_eq!(handle.processed(), items, "sharded lost items");
            items as f64 / elapsed.as_secs_f64()
        }
        other => unreachable!("unknown queue {other}"),
    }
}

/// Runs the whole sweep, printing one progress line per configuration.
#[must_use]
pub fn run_sweep(opts: &PoolSweepOptions) -> PoolBenchReport {
    let mut points = Vec::new();
    for queue in QUEUES {
        for task in TASKS {
            for controller in CONTROLLERS {
                for &workers in &opts.workers {
                    let items = if task == "tiny" {
                        opts.items_tiny
                    } else {
                        opts.items_stm
                    };
                    let mut ops = Vec::with_capacity(opts.reps as usize);
                    for _ in 0..opts.reps {
                        ops.push(run_once(queue, task, controller, workers, items));
                    }
                    let point = PoolBenchPoint {
                        queue,
                        task,
                        controller,
                        workers,
                        ops_per_sec: Stat::from_samples(ops),
                    };
                    eprintln!(
                        "  {queue:>7} {task:<7} {controller:<5} w={workers:<2} {:>12.0} items/s ± {:>8.0}",
                        point.ops_per_sec.mean, point.ops_per_sec.stddev,
                    );
                    points.push(point);
                }
            }
        }
    }
    PoolBenchReport {
        reps: opts.reps,
        items_tiny: opts.items_tiny,
        items_stm: opts.items_stm,
        smoke: opts.smoke,
        hw_threads: rubic_sync::thread::available_parallelism().map_or(1, |n| n.get() as u32),
        points,
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn json_stat(s: &Stat, indent: &str) -> String {
    let samples: Vec<String> = s.samples.iter().map(|&x| json_f64(x)).collect();
    format!(
        "{{\n{indent}  \"mean\": {},\n{indent}  \"stddev\": {},\n{indent}  \"samples\": [{}]\n{indent}}}",
        json_f64(s.mean),
        json_f64(s.stddev),
        samples.join(", "),
    )
}

impl PoolBenchReport {
    /// Serialises the report as the documented `rubic-poolbench/v1`
    /// JSON schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"harness\": {{\n    \"reps\": {},\n    \"items_tiny\": {},\n    \"items_stm\": {},\n    \"smoke\": {},\n    \"hw_threads\": {}\n  }},\n",
            self.reps, self.items_tiny, self.items_stm, self.smoke, self.hw_threads,
        ));
        out.push_str("  \"results\": [\n");
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"queue\": \"{}\",\n      \"task\": \"{}\",\n      \"controller\": \"{}\",\n      \"workers\": {},\n      \"ops_per_sec\": {}\n    }}",
                    p.queue,
                    p.task,
                    p.controller,
                    p.workers,
                    json_stat(&p.ops_per_sec, "      "),
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Structural sanity checks: non-empty grid, known axis values,
    /// finite positive throughput, sample counts matching `reps`. The
    /// binary refuses to write a report that fails these.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("empty sweep: no configurations measured".into());
        }
        for p in &self.points {
            let tag = format!("{}/{}/{}/w{}", p.queue, p.task, p.controller, p.workers);
            if !QUEUES.contains(&p.queue) {
                return Err(format!("{tag}: unknown queue"));
            }
            if !TASKS.contains(&p.task) {
                return Err(format!("{tag}: unknown task"));
            }
            if !CONTROLLERS.contains(&p.controller) {
                return Err(format!("{tag}: unknown controller"));
            }
            if p.workers == 0 {
                return Err(format!("{tag}: zero workers"));
            }
            if p.ops_per_sec.samples.len() != self.reps as usize {
                return Err(format!(
                    "{tag}: ops_per_sec has {} samples, expected {}",
                    p.ops_per_sec.samples.len(),
                    self.reps
                ));
            }
            if !p.ops_per_sec.mean.is_finite() || p.ops_per_sec.mean <= 0.0 {
                return Err(format!(
                    "{tag}: throughput {} out of range",
                    p.ops_per_sec.mean
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_valid_json() {
        let mut opts = PoolSweepOptions::smoke();
        // Keep the unit test well under a second.
        opts.workers = vec![1];
        opts.items_tiny = 400;
        opts.items_stm = 100;
        let report = run_sweep(&opts);
        report.validate().expect("smoke report must validate");
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"rubic-poolbench/v1\""));
        assert!(json.contains("\"queue\": \"sharded\""));
        assert_eq!(
            report.points.len(),
            8,
            "2 queues x 2 tasks x 2 controllers x 1 worker count"
        );
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        let empty = PoolBenchReport {
            reps: 1,
            items_tiny: 1,
            items_stm: 1,
            smoke: true,
            hw_threads: 1,
            points: Vec::new(),
        };
        assert!(empty.validate().is_err());

        let bad = PoolBenchReport {
            reps: 1,
            items_tiny: 1,
            items_stm: 1,
            smoke: true,
            hw_threads: 1,
            points: vec![PoolBenchPoint {
                queue: "sharded",
                task: "tiny",
                controller: "fixed",
                workers: 1,
                ops_per_sec: Stat::from_samples(vec![0.0]),
            }],
        };
        assert!(bad.validate().unwrap_err().contains("out of range"));
    }
}
