//! One regenerator per figure of the paper's evaluation (see the
//! experiment index in DESIGN.md §7).
//!
//! Absolute numbers come from the simulator's fitted curves and machine
//! model, so they are not expected to match the paper's testbed; the
//! *shapes* — who wins, by what factor, where crossovers fall — are the
//! reproduction target, and EXPERIMENTS.md records paper-vs-measured
//! for each figure.

use rubic::prelude::*;
use rubic::sim::{pairwise_experiments, single_process_experiments, ProcessSpec, SimConfig};
use rubic_sim::curves::{intruder_like, rbt_like, rbt_readonly, vacation_like};

use crate::Figure;

/// Repetition counts: the paper uses 50; `--quick` uses 5.
#[must_use]
pub fn default_reps(quick: bool) -> u32 {
    if quick {
        5
    } else {
        50
    }
}

/// Fig. 1 — Intruder's throughput over thread count: peak at ~7,
/// below half of sequential at 64.
#[must_use]
pub fn fig1() -> Vec<Figure> {
    let curve = intruder_like();
    let machine = Machine::paper();
    let mut f = Figure::new(
        "fig1",
        "Intruder speed-up vs parallel threads (64-context machine)",
        vec!["speedup".into(), "normalized".into()],
    );
    let speedups: Vec<f64> = (1..=64)
        .map(|l| machine.effective_speedup(curve.speedup(f64::from(l)), l))
        .collect();
    let peak = speedups.iter().cloned().fold(f64::MIN, f64::max);
    let peak_l = speedups
        .iter()
        .position(|&s| (s - peak).abs() < 1e-12)
        .unwrap_or(0)
        + 1;
    for (i, &s) in speedups.iter().enumerate() {
        f.push_row(format!("{}", i + 1), vec![s, s / peak]);
    }
    f.note(format!("peak at {peak_l} threads with speed-up {peak:.2}"));
    f.note(format!(
        "S(64) = {:.2} (paper: less than half of sequential)",
        speedups[63]
    ));
    vec![f]
}

/// Fig. 2 — joint-level trajectories of two identical processes under
/// AIAD vs AIMD, starting from an unequal allocation `X0`. This is the
/// paper's §2.1 *analysis* figure (the classic Chiu–Jain diagram), so
/// it uses the idealised model the analysis assumes: a **global**
/// congestion signal — both processes observe "oversubscribed" exactly
/// when `l1 + l2 > C` — rather than the per-process throughput feedback
/// of the full machine simulation (whose richer race dynamics appear in
/// Fig. 7b and Fig. 10 instead).
#[must_use]
pub fn fig2() -> Vec<Figure> {
    const C: f64 = 64.0;
    let run_pair = |multiplicative: bool, alpha: f64, id: &str, title: &str| {
        let (mut l1, mut l2) = (8.0f64, 24.0f64);
        let mut f = Figure::new(id, title, vec!["P1".into(), "P2".into(), "gap".into()]);
        for round in 0..400 {
            f.push_row(format!("{round}"), vec![l1, l2, (l1 - l2).abs()]);
            if l1 + l2 <= C {
                // Undersubscribed: additive increase for both.
                l1 += 1.0;
                l2 += 1.0;
            } else if multiplicative {
                l1 = (l1 * alpha).max(1.0);
                l2 = (l2 * alpha).max(1.0);
            } else {
                l1 = (l1 - 1.0).max(1.0);
                l2 = (l2 - 1.0).max(1.0);
            }
        }
        let late_gap: f64 =
            f.rows[300..].iter().map(|(_, v)| v[2]).sum::<f64>() / (f.rows.len() - 300) as f64;
        f.note(format!(
            "initial |P1-P2| = 16; mean gap over rounds 300-400: {late_gap:.2}"
        ));
        f
    };
    let mut a = run_pair(
        false,
        0.5,
        "fig2a",
        "AIAD trajectory: oscillates along the 45-degree line, unfairness persists",
    );
    a.note("paper: AIAD never converges to the fair allocation");
    let mut b = run_pair(
        true,
        0.5,
        "fig2b",
        "AIMD trajectory: multiplicative decrease pulls towards the fair diagonal",
    );
    b.note("paper: AIMD oscillates around the optimal point (32, 32)");
    vec![a, b]
}

/// Shared helper for the Fig. 3 / Fig. 5 single-scalable-process runs.
fn level_over_time(policy: Policy, id: &str, title: &str, expect: &str) -> Figure {
    let specs = [ProcessSpec::new("P", rbt_readonly(), policy)];
    let cfg = SimConfig::paper(1).with_rounds(1000);
    let result = rubic::sim::run(&specs, &cfg);
    let trace = &result.processes[0].trace;
    let mut f = Figure::new(id, title, vec!["level".into()]);
    for p in trace.points() {
        f.push_row(format!("{}", p.round), vec![f64::from(p.level)]);
    }
    let steady = trace.mean_level_in(300, 1000);
    let util = steady.min(64.0) / 64.0;
    f.note(format!(
        "steady-state mean level {steady:.1}, utilisation {:.0}%",
        util * 100.0
    ));
    f.note(expect.to_string());
    f
}

/// Fig. 3 — AIMD (α = 0.5) sawtooth on a perfectly scalable process:
/// average level ≈ 48 of 64 (75% utilisation).
#[must_use]
pub fn fig3() -> Vec<Figure> {
    vec![level_over_time(
        Policy::Aimd,
        "fig3",
        "AIMD (alpha=0.5) level over time, 64-context machine",
        "paper: average thread count ~48 (75% utilisation)",
    )]
}

/// Fig. 4 — the cubic growth function of Equation (1): steady-state
/// plateau at `L_max`, then the probing phase.
#[must_use]
pub fn fig4() -> Vec<Figure> {
    let mut f = Figure::new(
        "fig4",
        "Cubic growth function, L_max=64, beta=0.1",
        vec![
            "tcp a=0.8".into(),
            "paper-literal a=0.8".into(),
            "tcp a=0.5".into(),
        ],
    );
    for dt in 0..=24 {
        let d = f64::from(dt);
        f.push_row(
            format!("{dt}"),
            vec![
                cubic_level(64.0, d, 0.8, 0.1, CubicKConvention::TcpCubic),
                cubic_level(64.0, d, 0.8, 0.1, CubicKConvention::PaperLiteral),
                cubic_level(64.0, d, 0.5, 0.1, CubicKConvention::TcpCubic),
            ],
        );
    }
    f.note("steady-state phase below L_max, probing phase beyond (paper Fig. 4)");
    f.note("the paper-literal K restarts from (1-a)*L_max instead of a*L_max; see DESIGN.md");
    vec![f]
}

use rubic_controllers::cubic_level;

/// Fig. 5 — CIMD (α = 0.5, β = 0.1) on the same scenario as Fig. 3:
/// average level ≈ 60 (94% utilisation).
#[must_use]
pub fn fig5() -> Vec<Figure> {
    vec![level_over_time(
        Policy::Cimd,
        "fig5",
        "CIMD (alpha=0.5, beta=0.1) level over time, 64-context machine",
        "paper: average thread count ~60 (94% utilisation)",
    )]
}

/// Fig. 6 — scalability graphs of the three workloads, normalised to
/// each workload's peak throughput.
#[must_use]
pub fn fig6() -> Vec<Figure> {
    let curves: [(&str, rubic::sim::Curve); 3] = [
        ("Intruder", intruder_like()),
        ("Vacation", vacation_like()),
        ("RBT", rbt_like()),
    ];
    let machine = Machine::paper();
    let mut f = Figure::new(
        "fig6",
        "Normalised scalability of the evaluated workloads",
        curves.iter().map(|(n, _)| (*n).to_string()).collect(),
    );
    let series: Vec<Vec<f64>> = curves
        .iter()
        .map(|(_, c)| {
            let raw: Vec<f64> = (1..=64)
                .map(|l| machine.effective_speedup(c.speedup(f64::from(l)), l))
                .collect();
            let peak = raw.iter().cloned().fold(f64::MIN, f64::max);
            raw.into_iter().map(|s| s / peak).collect()
        })
        .collect();
    for l in 0..64 {
        f.push_row(format!("{}", l + 1), series.iter().map(|s| s[l]).collect());
    }
    for ((name, c), s) in curves.iter().zip(&series) {
        let peak_l = s.iter().position(|&v| (v - 1.0).abs() < 1e-12).unwrap_or(0) + 1;
        f.note(format!("{name} ({}) peaks at {peak_l} threads", c.name()));
    }
    vec![f]
}

/// The five evaluated policies, in the paper's figure order.
fn policies() -> [Policy; 5] {
    Policy::EVALUATED
}

/// Fig. 7 — system-wide metrics for the three pairwise experiments:
/// (a) total speed-up (Nash product) with geometric average, (b) total
/// software threads, (c) total efficiency.
#[must_use]
pub fn fig7(reps: u32) -> Vec<Figure> {
    let mut a = Figure::new(
        "fig7a",
        "Pairwise total speed-up (Nash product), higher is better",
        vec![
            "Int/Vac".into(),
            "Int/RBT".into(),
            "Vac/RBT".into(),
            "GeoAvg".into(),
        ],
    );
    let mut b = Figure::new(
        "fig7b",
        "Pairwise mean total software threads (dashed line: 64 contexts)",
        vec![
            "Int/Vac".into(),
            "Int/RBT".into(),
            "Vac/RBT".into(),
            "Mean".into(),
        ],
    );
    let mut c = Figure::new(
        "fig7c",
        "Pairwise total efficiency (product), higher is better",
        vec![
            "Int/Vac".into(),
            "Int/RBT".into(),
            "Vac/RBT".into(),
            "GeoAvg".into(),
        ],
    );
    for policy in policies() {
        let outcomes = pairwise_experiments(policy, reps);
        let nash: Vec<f64> = outcomes.iter().map(|(_, o)| o.nash.mean()).collect();
        let threads: Vec<f64> = outcomes
            .iter()
            .map(|(_, o)| o.total_threads.mean())
            .collect();
        let eff: Vec<f64> = outcomes
            .iter()
            .map(|(_, o)| o.total_efficiency.mean())
            .collect();
        a.push_row(
            policy.label(),
            vec![nash[0], nash[1], nash[2], geometric_mean(&nash)],
        );
        b.push_row(
            policy.label(),
            vec![
                threads[0],
                threads[1],
                threads[2],
                threads.iter().sum::<f64>() / 3.0,
            ],
        );
        c.push_row(
            policy.label(),
            vec![eff[0], eff[1], eff[2], geometric_mean(&eff)],
        );
    }
    a.note("paper: RUBIC best on every pair; Greedy worst; RUBIC ~+26% vs EBS on GeoAvg");
    b.note("paper: only RUBIC keeps total threads below 64 on all pairs");
    c.note("paper: RUBIC ~2x EBS and ~66x Greedy on total efficiency");
    vec![a, b, c]
}

/// Fig. 8 — per-process metrics of the pairwise experiments: (a)
/// speed-ups, (b) allocation standard deviation across repetitions,
/// (c) allocated threads.
#[must_use]
pub fn fig8(reps: u32) -> Vec<Figure> {
    let columns: Vec<String> = [
        "Int/Vac:Int",
        "Int/Vac:Vac",
        "Int/RBT:Int",
        "Int/RBT:RBT",
        "Vac/RBT:Vac",
        "Vac/RBT:RBT",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let mut a = Figure::new("fig8a", "Per-process speed-up (pairwise)", columns.clone());
    let mut b = Figure::new(
        "fig8b",
        "Std-dev of per-process allocation across repetitions (lower is better)",
        columns.clone(),
    );
    let mut c = Figure::new("fig8c", "Per-process allocated threads (pairwise)", columns);
    for policy in policies() {
        let outcomes = pairwise_experiments(policy, reps);
        let mut speedups = Vec::new();
        let mut stddevs = Vec::new();
        let mut levels = Vec::new();
        for (_, o) in &outcomes {
            for p in &o.per_process {
                speedups.push(p.speedup.mean());
                stddevs.push(p.level.stddev());
                levels.push(p.level.mean());
            }
        }
        a.push_row(policy.label(), speedups);
        b.push_row(policy.label(), stddevs);
        c.push_row(policy.label(), levels);
    }
    a.note("paper: Greedy maximises RBT alone; RUBIC trades a sliver of RBT for big Intruder/Vacation gains (proportional fairness)");
    b.note("paper: RUBIC has the lowest allocation std-dev, F2C2 the highest");
    c.note("paper: RUBIC gives RBT fewer threads to relieve its counterpart; F2C2's Vacation can stay beyond 64");
    vec![a, b, c]
}

/// Fig. 9 — single-process execution: (a) speed-up, (b) allocated
/// threads, (c) allocation std-dev. EqualShare and Greedy coincide.
#[must_use]
pub fn fig9(reps: u32) -> Vec<Figure> {
    let columns: Vec<String> = ["Intruder", "Vacation", "RBT", "Avg"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let mut a = Figure::new("fig9a", "Single-process speed-up", columns.clone());
    let mut b = Figure::new("fig9b", "Single-process allocated threads", columns.clone());
    let mut c = Figure::new(
        "fig9c",
        "Single-process allocation std-dev across repetitions",
        columns,
    );
    for policy in policies() {
        let outcomes = single_process_experiments(policy, reps);
        let s: Vec<f64> = outcomes
            .iter()
            .map(|(_, o)| o.per_process[0].speedup.mean())
            .collect();
        let l: Vec<f64> = outcomes
            .iter()
            .map(|(_, o)| o.per_process[0].level.mean())
            .collect();
        let d: Vec<f64> = outcomes
            .iter()
            .map(|(_, o)| o.per_process[0].level.stddev())
            .collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        a.push_row(policy.label(), vec![s[0], s[1], s[2], avg(&s)]);
        b.push_row(policy.label(), vec![l[0], l[1], l[2], avg(&l)]);
        c.push_row(policy.label(), vec![d[0], d[1], d[2], avg(&d)]);
    }
    a.note("paper: RUBIC always comparable to the best policy; EqualShare == Greedy here");
    b.note("paper: RUBIC allocates slightly fewer threads, closest to EBS");
    c.note("paper: RUBIC most stable on average; EBS comparable");
    vec![a, b, c]
}

/// Fig. 10 — convergence behaviour: two identical conflict-free RBT
/// processes, P2 arriving at t = 5 s (round 500), 10 s total, under
/// F2C2, EBS and RUBIC.
#[must_use]
pub fn fig10() -> Vec<Figure> {
    let make = |policy: Policy, id: &str, expect: &str| {
        let specs = [
            ProcessSpec::new("P1", rbt_readonly(), policy),
            ProcessSpec::new("P2", rbt_readonly(), policy).arrives_at(500),
        ];
        // A single noisy run, like the paper's plotted trace.
        let cfg = SimConfig::paper(2).with_noise(0.02, 2016);
        let result = rubic::sim::run(&specs, &cfg);
        let p1 = &result.processes[0].trace;
        let p2 = &result.processes[1].trace;
        let mut f = Figure::new(
            id,
            format!("{} level traces (P2 arrives at round 500)", policy.label()),
            vec!["P1".into(), "P2".into()],
        );
        for p in p1.points() {
            let l2 = p2
                .points()
                .iter()
                .find(|q| q.round == p.round)
                .map_or(0.0, |q| f64::from(q.level));
            f.push_row(format!("{}", p.round), vec![f64::from(p.level), l2]);
        }
        f.note(format!(
            "P1 pre-arrival mean (rounds 300-500): {:.1}",
            p1.mean_level_in(300, 500)
        ));
        f.note(format!(
            "post-arrival means (rounds 800-1000): P1 {:.1}, P2 {:.1} (fair split: 32/32)",
            p1.mean_level_in(800, 1000),
            p2.mean_level_in(800, 1000)
        ));
        f.note(expect.to_string());
        f
    };
    vec![
        make(
            Policy::F2c2,
            "fig10a",
            "paper: F2C2 overshoots onto a plateau and never converges; post-arrival race",
        ),
        make(
            Policy::Ebs,
            "fig10b",
            "paper: EBS converges to 64 alone but behaves erratically after P2 arrives",
        ),
        make(
            Policy::Rubic,
            "fig10c",
            "paper: RUBIC reaches 64 quickly, then both processes settle around 32",
        ),
    ]
}

/// §4.5 headline numbers: RUBIC vs the best/worst policies on the
/// pairwise geometric averages.
#[must_use]
pub fn headline(reps: u32) -> Vec<Figure> {
    let mut nash_geo = Vec::new();
    let mut eff_geo = Vec::new();
    let mut thread_mean = Vec::new();
    for policy in policies() {
        let outcomes = pairwise_experiments(policy, reps);
        let nash: Vec<f64> = outcomes.iter().map(|(_, o)| o.nash.mean()).collect();
        let eff: Vec<f64> = outcomes
            .iter()
            .map(|(_, o)| o.total_efficiency.mean())
            .collect();
        let thr: Vec<f64> = outcomes
            .iter()
            .map(|(_, o)| o.total_threads.mean())
            .collect();
        nash_geo.push((policy.label(), geometric_mean(&nash)));
        eff_geo.push((policy.label(), geometric_mean(&eff)));
        thread_mean.push((policy.label(), thr.iter().sum::<f64>() / 3.0));
    }
    let get =
        |v: &[(&str, f64)], name: &str| v.iter().find(|(n, _)| *n == name).map_or(0.0, |(_, x)| *x);
    let mut f = Figure::new(
        "headline",
        "Section 4.5 headline comparisons (pairwise geometric averages)",
        vec![
            "GeoAvg Nash".into(),
            "GeoAvg efficiency".into(),
            "Mean threads".into(),
        ],
    );
    for (i, policy) in policies().iter().enumerate() {
        f.push_row(
            policy.label(),
            vec![nash_geo[i].1, eff_geo[i].1, thread_mean[i].1],
        );
    }
    let rubic_vs_ebs = get(&nash_geo, "RUBIC") / get(&nash_geo, "EBS") - 1.0;
    let rubic_vs_greedy = get(&nash_geo, "RUBIC") / get(&nash_geo, "Greedy") - 1.0;
    let eff_vs_ebs = get(&eff_geo, "RUBIC") / get(&eff_geo, "EBS");
    let eff_vs_greedy = get(&eff_geo, "RUBIC") / get(&eff_geo, "Greedy");
    f.note(format!(
        "RUBIC vs EBS performance: {:+.0}% (paper: +26%)",
        rubic_vs_ebs * 100.0
    ));
    f.note(format!(
        "RUBIC vs Greedy performance: {:+.0}% (paper: +500%)",
        rubic_vs_greedy * 100.0
    ));
    f.note(format!(
        "RUBIC vs EBS efficiency: {eff_vs_ebs:.1}x (paper: 2x)"
    ));
    f.note(format!(
        "RUBIC vs Greedy efficiency: {eff_vs_greedy:.0}x (paper: 66x)"
    ));
    vec![f]
}

/// Regenerates the figures selected by `selector` ("1", "7", "10",
/// "headline", "all").
#[must_use]
pub fn generate(selector: &str, reps: u32) -> Vec<Figure> {
    match selector {
        "1" => fig1(),
        "2" => fig2(),
        "3" => fig3(),
        "4" => fig4(),
        "5" => fig5(),
        "6" => fig6(),
        "7" => fig7(reps),
        "8" => fig8(reps),
        "9" => fig9(reps),
        "10" => fig10(),
        "headline" => headline(reps),
        "all" => {
            let mut out = Vec::new();
            for s in [
                "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "headline",
            ] {
                out.extend(generate(s, reps));
            }
            out
        }
        other => panic!("unknown figure selector: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_peak_near_seven() {
        let f = &fig1()[0];
        assert_eq!(f.rows.len(), 64);
        let peak_row = f
            .rows
            .iter()
            .max_by(|a, b| a.1[0].partial_cmp(&b.1[0]).unwrap())
            .unwrap();
        let peak_l: u32 = peak_row.0.parse().unwrap();
        assert!((5..=9).contains(&peak_l), "peak at {peak_l}");
        assert!(f.value("64", "speedup").unwrap() < 0.5);
    }

    #[test]
    fn fig2_aimd_converges_aiad_does_not() {
        let figs = fig2();
        let late_gap = |f: &Figure| {
            f.rows[300..].iter().map(|(_, v)| v[2]).sum::<f64>() / (f.rows.len() - 300) as f64
        };
        let aiad_gap = late_gap(&figs[0]);
        let aimd_gap = late_gap(&figs[1]);
        assert!(
            (aiad_gap - 16.0).abs() < 1e-9,
            "AIAD gap should persist at 16, got {aiad_gap}"
        );
        assert!(aimd_gap <= 2.0, "AIMD gap should shrink, got {aimd_gap}");
    }

    #[test]
    fn fig3_vs_fig5_utilization() {
        let parse_steady = |f: &Figure| {
            // First note: "steady-state mean level X, utilisation Y%".
            let note = &f.notes[0];
            let start = note.find("level ").unwrap() + 6;
            let end = note[start..].find(',').unwrap() + start;
            note[start..end].parse::<f64>().unwrap()
        };
        let aimd = parse_steady(&fig3()[0]);
        let cimd = parse_steady(&fig5()[0]);
        assert!(
            (40.0..=56.0).contains(&aimd),
            "AIMD steady level {aimd}, expected ~48"
        );
        assert!(cimd > aimd + 4.0, "CIMD {cimd} should beat AIMD {aimd}");
    }

    #[test]
    fn fig4_tcp_curve_plateaus_at_lmax() {
        let f = &fig4()[0];
        // The TCP-convention curve passes L_max = 64 around dt = K ≈ 5.
        let near_plateau = f.value("5", "tcp a=0.8").unwrap();
        assert!((60.0..=68.0).contains(&near_plateau));
        // Probing: beyond the plateau it accelerates past L_max.
        assert!(f.value("15", "tcp a=0.8").unwrap() > 100.0);
    }

    #[test]
    fn fig6_normalised_and_ordered() {
        let f = &fig6()[0];
        assert_eq!(f.rows.len(), 64);
        for (_, v) in &f.rows {
            assert!(v.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        }
        // At 64 threads RBT retains most of its peak, Intruder least.
        let last = &f.rows[63].1;
        assert!(last[2] > last[1] && last[1] > last[0]);
    }

    #[test]
    fn fig7_rubic_wins_overall() {
        let figs = fig7(4);
        let a = &figs[0];
        let rubic = a.value("RUBIC", "GeoAvg").unwrap();
        for p in ["Greedy", "EqualShare", "F2C2"] {
            assert!(
                rubic > a.value(p, "GeoAvg").unwrap(),
                "RUBIC should beat {p}"
            );
        }
        // Fig 7b: RUBIC stays at or below the 64-context line.
        let b = &figs[1];
        assert!(b.value("RUBIC", "Mean").unwrap() <= 66.0);
        assert!(b.value("Greedy", "Mean").unwrap() > 100.0);
    }

    #[test]
    fn fig9_equalshare_equals_greedy() {
        let figs = fig9(3);
        let b = &figs[1];
        for col in ["Intruder", "Vacation", "RBT"] {
            let g = b.value("Greedy", col).unwrap();
            let e = b.value("EqualShare", col).unwrap();
            assert!((g - e).abs() < 1e-9, "{col}: {g} vs {e}");
        }
    }

    #[test]
    fn fig10_rubic_converges_to_fair_split() {
        let figs = fig10();
        let rubic = figs.iter().find(|f| f.id == "fig10c").unwrap();
        // Post-arrival note records means near 32/32.
        let note = &rubic.notes[1];
        assert!(note.contains("P1"), "{note}");
        let tail_rows: Vec<&(String, Vec<f64>)> = rubic
            .rows
            .iter()
            .filter(|(r, _)| r.parse::<u64>().unwrap() >= 800)
            .collect();
        let mean_p1: f64 =
            tail_rows.iter().map(|(_, v)| v[0]).sum::<f64>() / tail_rows.len() as f64;
        let mean_p2: f64 =
            tail_rows.iter().map(|(_, v)| v[1]).sum::<f64>() / tail_rows.len() as f64;
        assert!(
            (22.0..=42.0).contains(&mean_p1) && (22.0..=42.0).contains(&mean_p2),
            "RUBIC post-arrival means {mean_p1:.1}/{mean_p2:.1}, expected near 32/32"
        );
    }

    #[test]
    fn headline_orderings() {
        let f = &headline(4)[0];
        let nash = |p: &str| f.value(p, "GeoAvg Nash").unwrap();
        assert!(nash("RUBIC") > nash("EBS"));
        assert!(nash("EBS") > nash("Greedy"));
        let eff = |p: &str| f.value(p, "GeoAvg efficiency").unwrap();
        assert!(eff("RUBIC") > 1.5 * eff("Greedy"));
    }

    #[test]
    #[should_panic(expected = "unknown figure selector")]
    fn generate_rejects_unknown() {
        let _ = generate("nope", 1);
    }
}
