//! `rubic-sync`: the workspace's single doorway to synchronization
//! primitives.
//!
//! Normal builds re-export `std::sync::atomic` and the (vendored)
//! `parking_lot` types unchanged — the facade is zero-cost, nothing is
//! wrapped. Compiled with `RUSTFLAGS="--cfg rubic_check"`, the same
//! paths resolve to `rubic-check`'s checked primitives instead, so the
//! production protocols (STM versioned locks, pool semaphore, sharded
//! queue) run under the deterministic model checker without source
//! changes.
//!
//! The repo-wide lint (`cargo xtask lint`) bans direct
//! `std::sync::atomic` / `std::sync::Mutex` / `std::thread` imports in
//! production code outside this crate so the switch stays complete.
//!
//! What switches: atomics, `Mutex`/`Condvar`, and `thread`
//! spawn/join/sleep/yield. What does not: `Arc`, `OnceLock`, and
//! `RwLock` pass through in both modes (they carry no protocol logic
//! the checker models; `RwLock` is only used for rarely-written
//! configuration state).

#![forbid(unsafe_code)]

/// Atomic types and `Ordering`.
///
/// Under `--cfg rubic_check` every operation is a scheduling point and
/// feeds the vector-clock layer with its *claimed* ordering, which is
/// how too-weak orderings are caught.
#[cfg(not(rubic_check))]
pub mod atomic {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}
#[cfg(rubic_check)]
pub use rubic_check::sync::atomic;

#[cfg(not(rubic_check))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
#[cfg(rubic_check)]
pub use rubic_check::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Pass-through in both modes: the checker does not model `RwLock`
/// (config-state only in this workspace) and `Arc`/`OnceLock` carry no
/// schedule-visible protocol.
pub use parking_lot::RwLock;
pub use std::sync::{Arc, OnceLock, Weak};

/// Thread spawn/join/sleep/yield.
///
/// Under the checker, spawned threads register with the engine, `sleep`
/// is a pure scheduling point (no wall-clock delay), and joins are
/// happens-before edges.
#[cfg(not(rubic_check))]
pub mod thread {
    pub use std::thread::{
        available_parallelism, sleep, spawn, yield_now, Builder, JoinHandle, Result,
    };
}
#[cfg(rubic_check)]
pub use rubic_check::sync::thread;
