//! Golden-trace test for Algorithm 2: the level sequence below is
//! derived *by hand* from the paper's pseudocode with the default
//! constants (α = 0.8, β = 0.1, TCP-CUBIC `K`, pool 64), so any drift
//! in the state machine's semantics fails loudly here.
//!
//! Derivation (K₁ = ∛(1·0.2/0.1) ≈ 1.2599, K₄ = ∛(4·0.2/0.1) = 2):
//!
//! | r | T_c | branch | state effects | next level |
//! |---|-----|--------|----------------|------------|
//! | 0 | 100 | grow/CUBIC  | Δt=1, L_cubic≈0.998, max(·, 1+1) | 2 |
//! | 1 | 110 | grow/LINEAR | rearm reduction, T_p=110 | 3 |
//! | 2 | 120 | grow/CUBIC  | Δt=2, L_cubic≈1.041, max(·, 3+1) | 4 |
//! | 3 | 130 | grow/LINEAR | | 5 |
//! | 4 | 50  | loss/LINEAR | Δt=0, −2, reduction→MULT, T_p=0 | 3 |
//! | 5 | 60  | grow/LINEAR (free pass, T_p was 0) | T_p=60 | 4 |
//! | 6 | 20  | loss/MULT   | L_max=4, 0.8·4=3.2→3, T_p=0 | 3 |
//! | 7 | 10  | grow/LINEAR (free pass) | T_p=10 | 4 |
//! | 8 | 30  | grow/CUBIC  | Δt=1, L_cubic=4+0.1(1−2)³=3.9, max(·, 5) | 5 |

use rubic_controllers::{Controller, Rubic, RubicConfig, Sample};

#[test]
fn algorithm2_golden_trace() {
    let mut c = Rubic::new(RubicConfig::default(), 64);
    let throughputs = [100.0, 110.0, 120.0, 130.0, 50.0, 60.0, 20.0, 10.0, 30.0];
    let expected = [2u32, 3, 4, 5, 3, 4, 3, 4, 5];
    let mut level = 1u32;
    for (round, (&thr, &want)) in throughputs.iter().zip(&expected).enumerate() {
        level = c.decide(Sample {
            throughput: thr,
            level,
            round: round as u64,
        });
        assert_eq!(
            level, want,
            "round {round}: got {level}, expected {want} (see derivation table)"
        );
    }
    // After the multiplicative decrease at round 6, L_max is 4.
    assert_eq!(c.l_max(), 4.0);
}

#[test]
fn algorithm2_probing_phase_accelerates() {
    // §2.2 / Fig. 10c: from L_max = 1, the interleaved cubic/linear
    // growth must exceed 64 threads within a bounded number of rounds
    // (the paper's trace crosses 64 in well under a second = 100
    // rounds).
    let mut c = Rubic::new(RubicConfig::default(), 512);
    let mut level = 1u32;
    let mut rounds = 0u64;
    while level < 64 {
        level = c.decide(Sample {
            throughput: 1000.0 + rounds as f64, // ever improving
            level,
            round: rounds,
        });
        rounds += 1;
        assert!(
            rounds < 60,
            "probing too slow: still at {level} after {rounds}"
        );
    }
    assert!(
        rounds >= 10,
        "unrealistically fast probing: {rounds} rounds"
    );
}

#[test]
fn consecutive_losses_alternate_linear_multiplicative() {
    // Feed strictly alternating (loss, free-pass) pairs: reductions must
    // alternate -2 (linear) and ×α (multiplicative) because each
    // genuine improvement is absent (free passes have T_p = 0 and do
    // not re-arm the linear phase).
    let mut c = Rubic::new(RubicConfig::default(), 256);
    // Establish T_p and a high level.
    let mut level = c.decide(Sample {
        throughput: 1000.0,
        level: 200,
        round: 0,
    });
    // Loss #1: linear (-2).
    let after1 = c.decide(Sample {
        throughput: 1.0,
        level,
        round: 1,
    });
    assert_eq!(after1, level - 2);
    // Free pass (+1, linear growth).
    level = c.decide(Sample {
        throughput: 0.5,
        level: after1,
        round: 2,
    });
    assert_eq!(level, after1 + 1);
    // Loss #2: multiplicative (×0.8).
    let after2 = c.decide(Sample {
        throughput: 0.1,
        level,
        round: 3,
    });
    assert_eq!(after2, (f64::from(level) * 0.8).round() as u32);
    // Free pass again.
    let level2 = c.decide(Sample {
        throughput: 0.05,
        level: after2,
        round: 4,
    });
    assert_eq!(level2, after2 + 1);
    // Loss #3: linear again (the alternation continues).
    let after3 = c.decide(Sample {
        throughput: 0.01,
        level: level2,
        round: 5,
    });
    assert_eq!(after3, level2 - 2);
}
