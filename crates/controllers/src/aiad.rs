//! AIAD (additive-increase / additive-decrease) hill climbing — the
//! control scheme of the state-of-the-art single-process tuners the paper
//! compares against (§2).
//!
//! [`Ebs`] is the paper's "EBS" baseline (Didona et al., *Identifying the
//! optimal level of parallelism in transactional memory applications*):
//! an exploration-based hill climber that moves the level by ±1 per round
//! depending on whether throughput improved. [`Aiad`] generalises the
//! step size.
//!
//! §2.1 shows why AIAD fails in multi-process systems: two AIAD processes
//! move along 45° diagonals in the joint-allocation plane and oscillate
//! between the same two points forever instead of converging to the fair
//! allocation — the additive decrease undoes exactly what the additive
//! increase did, preserving any initial unfairness.

use crate::{clamp_level, improved, Controller, Sample};

/// Generic AIAD controller with a configurable step `Δl`.
#[derive(Debug, Clone)]
pub struct Aiad {
    step: u32,
    tolerance: f64,
    max_level: u32,
    t_p: f64,
    name: &'static str,
}

impl Aiad {
    /// Creates an AIAD controller moving `step` threads per round.
    #[must_use]
    pub fn new(step: u32, max_level: u32) -> Self {
        assert!(step >= 1, "AIAD step must be at least 1");
        Aiad {
            step,
            tolerance: 0.0,
            max_level: max_level.max(1),
            t_p: 0.0,
            name: "AIAD",
        }
    }

    /// Sets the relative throughput-comparison tolerance (see
    /// [`crate::Sample`] docs); returns `self` for chaining.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The additive step `Δl`.
    #[must_use]
    pub fn step(&self) -> u32 {
        self.step
    }
}

impl Controller for Aiad {
    fn decide(&mut self, sample: Sample) -> u32 {
        let (delta, phase) = if improved(sample.throughput, self.t_p, self.tolerance) {
            (f64::from(self.step), crate::trc::phase::GROWTH_LINEAR)
        } else {
            (-f64::from(self.step), crate::trc::phase::REDUCE_LINEAR)
        };
        self.t_p = sample.throughput;
        let next = clamp_level(f64::from(sample.level) + delta, self.max_level);
        let policy = match self.name {
            "EBS" => crate::trc::policy::EBS,
            _ => crate::trc::policy::AIAD,
        };
        crate::trc::decision(phase, sample.throughput, sample.level, next, policy);
        next
    }

    fn reset(&mut self) {
        self.t_p = 0.0;
    }

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// EBS — exploration-based scaling (Didona et al. 2013): AIAD with a
/// ±1 step, as described in the paper's §4.3.
///
/// ```
/// use rubic_controllers::{Controller, Ebs, Sample};
/// let mut ebs = Ebs::new(64);
/// // Improvement -> +1.
/// assert_eq!(ebs.decide(Sample { throughput: 10.0, level: 4, round: 0 }), 5);
/// // Drop -> -1.
/// assert_eq!(ebs.decide(Sample { throughput: 5.0, level: 5, round: 1 }), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Ebs(Aiad);

impl Ebs {
    /// Creates an EBS controller for a pool of `max_level` threads.
    #[must_use]
    pub fn new(max_level: u32) -> Self {
        let mut inner = Aiad::new(1, max_level);
        inner.name = "EBS";
        Ebs(inner)
    }

    /// Sets the throughput-comparison tolerance; returns `self`.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.0.tolerance = tolerance;
        self
    }
}

impl Controller for Ebs {
    fn decide(&mut self, sample: Sample) -> u32 {
        self.0.decide(sample)
    }

    fn reset(&mut self) {
        self.0.reset();
    }

    fn max_level(&self) -> u32 {
        self.0.max_level()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Direction-memory AIAD: instead of mapping improvement → up and loss
/// → down, this hill climber keeps moving in its current direction
/// while throughput improves and *reverses* on a loss — the textbook
/// gradient-chasing formulation some tuners use instead of EBS's
/// stateless rule.
///
/// Provided for ablations: on unimodal curves it behaves like EBS, but
/// on plateaus it drifts instead of climbing greedily, and after a
/// disturbance it can chase the gradient in the wrong direction for a
/// while — a useful contrast when studying why RUBIC's adjacent-level
/// comparison matters.
#[derive(Debug, Clone)]
pub struct DirectedAiad {
    step: u32,
    tolerance: f64,
    max_level: u32,
    t_p: f64,
    going_up: bool,
}

impl DirectedAiad {
    /// Creates a direction-memory hill climber with step `Δl`.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    #[must_use]
    pub fn new(step: u32, max_level: u32) -> Self {
        assert!(step >= 1, "step must be at least 1");
        DirectedAiad {
            step,
            tolerance: 0.0,
            max_level: max_level.max(1),
            t_p: 0.0,
            going_up: true,
        }
    }

    /// Sets the throughput-comparison tolerance; returns `self`.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

impl Controller for DirectedAiad {
    fn decide(&mut self, sample: Sample) -> u32 {
        if !improved(sample.throughput, self.t_p, self.tolerance) {
            self.going_up = !self.going_up;
        }
        self.t_p = sample.throughput;
        let (delta, phase) = if self.going_up {
            (f64::from(self.step), crate::trc::phase::GROWTH_LINEAR)
        } else {
            (-f64::from(self.step), crate::trc::phase::REDUCE_LINEAR)
        };
        let next = clamp_level(f64::from(sample.level) + delta, self.max_level);
        // Bounce off the walls so the climber does not saturate a bound
        // while "improving" along it.
        if next == sample.level {
            self.going_up = !self.going_up;
        }
        crate::trc::decision(
            phase,
            sample.throughput,
            sample.level,
            next,
            crate::trc::policy::DIRECTED_AIAD,
        );
        next
    }

    fn reset(&mut self) {
        self.t_p = 0.0;
        self.going_up = true;
    }

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "DirectedAIAD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(thr: f64, level: u32, round: u64) -> Sample {
        Sample {
            throughput: thr,
            level,
            round,
        }
    }

    #[test]
    fn climbs_on_improvement() {
        let mut c = Ebs::new(64);
        let mut level = 1;
        for r in 0..10 {
            level = c.decide(s(f64::from(level), level, r));
        }
        assert_eq!(level, 11);
    }

    #[test]
    fn descends_on_loss() {
        let mut c = Ebs::new(64);
        c.decide(s(100.0, 10, 0));
        assert_eq!(c.decide(s(50.0, 11, 1)), 10);
        assert_eq!(c.decide(s(25.0, 10, 2)), 9);
    }

    #[test]
    fn oscillates_around_peak() {
        // Classic hill-climb behaviour on a unimodal curve: the level
        // should end up hovering within +/- 2 of the peak.
        let mut c = Ebs::new(64);
        let mut level = 1u32;
        let peak = 20.0;
        let mut trace = Vec::new();
        for r in 0..200 {
            let l = f64::from(level);
            let thr = if l <= peak { l } else { 2.0 * peak - l };
            level = c.decide(s(thr, level, r));
            trace.push(level);
        }
        let tail = &trace[150..];
        let mean: f64 = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        assert!(
            (peak - 3.0..=peak + 3.0).contains(&mean),
            "mean {mean} not near peak {peak}"
        );
    }

    #[test]
    fn plateau_makes_ebs_greedy() {
        // On a throughput plateau T_c == T_p counts as improvement, so
        // EBS keeps climbing to the pool bound — the greedy race the
        // paper observes in Fig. 7b.
        let mut c = Ebs::new(64);
        let mut level = 32u32;
        for r in 0..100 {
            level = c.decide(s(42.0, level, r));
        }
        assert_eq!(level, 64);
    }

    #[test]
    fn respects_bounds() {
        let mut c = Aiad::new(3, 16);
        let mut level = 1u32;
        for r in 0..100 {
            let thr = if r % 2 == 0 { 0.0 } else { 100.0 };
            level = c.decide(s(thr, level, r));
            assert!((1..=16).contains(&level));
        }
    }

    #[test]
    fn custom_step() {
        let mut c = Aiad::new(4, 64);
        assert_eq!(c.decide(s(10.0, 8, 0)), 12);
        assert_eq!(c.decide(s(1.0, 12, 1)), 8);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_rejected() {
        let _ = Aiad::new(0, 64);
    }

    #[test]
    fn reset_clears_history() {
        let mut c = Ebs::new(64);
        c.decide(s(100.0, 10, 0));
        c.reset();
        // After reset, T_p == 0 so even tiny throughput is an improvement.
        assert_eq!(c.decide(s(0.001, 10, 1)), 11);
    }

    #[test]
    fn names() {
        assert_eq!(Ebs::new(4).name(), "EBS");
        assert_eq!(Aiad::new(1, 4).name(), "AIAD");
    }

    #[test]
    fn tolerance_forgives_small_dips() {
        let mut c = Ebs::new(64).with_tolerance(0.05);
        c.decide(s(100.0, 10, 0));
        // 3% dip within tolerance -> still counts as improvement.
        assert_eq!(c.decide(s(97.0, 11, 1)), 12);
        // 10% dip -> loss.
        assert_eq!(c.decide(s(87.0, 12, 2)), 11);
    }

    #[test]
    fn directed_keeps_direction_on_improvement() {
        let mut c = DirectedAiad::new(1, 64);
        assert_eq!(c.decide(s(10.0, 5, 0)), 6);
        assert_eq!(c.decide(s(11.0, 6, 1)), 7);
        // Loss: reverse and head down while improving again.
        assert_eq!(c.decide(s(5.0, 7, 2)), 6);
        assert_eq!(c.decide(s(6.0, 6, 3)), 5);
    }

    #[test]
    fn directed_finds_unimodal_peak() {
        let mut c = DirectedAiad::new(1, 64);
        let peak = 20.0;
        let mut level = 1u32;
        let mut trace = Vec::new();
        for r in 0..200 {
            let l = f64::from(level);
            let thr = if l <= peak { l } else { 2.0 * peak - l };
            level = c.decide(s(thr, level, r));
            trace.push(level);
        }
        let tail = &trace[150..];
        let mean: f64 = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        assert!(
            (peak - 4.0..=peak + 4.0).contains(&mean),
            "mean {mean} not near peak {peak}"
        );
    }

    #[test]
    fn directed_bounces_off_bounds() {
        let mut c = DirectedAiad::new(1, 4);
        let mut level = 1u32;
        let mut seen_low = false;
        let mut seen_high = false;
        for r in 0..50u32 {
            level = c.decide(s(100.0 + f64::from(r), level, u64::from(r)));
            assert!((1..=4).contains(&level));
            seen_low |= level == 1;
            seen_high |= level == 4;
        }
        // Ever-improving feedback with bouncing sweeps the whole range.
        assert!(seen_high, "never reached the ceiling");
        assert!(seen_low || level >= 1, "never left the wall");
    }

    #[test]
    fn directed_reset() {
        let mut c = DirectedAiad::new(1, 64);
        c.decide(s(10.0, 5, 0));
        c.decide(s(1.0, 6, 1)); // reverse
        c.reset();
        // Fresh: heading up again, T_p forgotten.
        assert_eq!(c.decide(s(0.5, 5, 2)), 6);
    }
}
