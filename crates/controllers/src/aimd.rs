//! AIMD (additive-increase / multiplicative-decrease) — the paper's
//! SPAA '15 brief-announcement predecessor (Mohtasham & Barreto, *Fair
//! adaptive parallelism for concurrent TM applications*), analysed in
//! §2.1–§2.2.
//!
//! Replacing AIAD's additive decrease with a multiplicative one makes a
//! multi-process system *converge* to the fair allocation (the classic
//! Chiu–Jain result for congestion avoidance), but the deep sawtooth
//! undersubscribes the machine: with α = 0.5 on a 64-context machine the
//! level oscillates between ~32 and ~64 for an average of ~48 — only 75%
//! utilisation (Fig. 3). RUBIC's cubic growth exists to fix exactly this.

use crate::{clamp_level, improved, Controller, Sample};

/// AIMD controller: `+step` on improvement, `level × α` on loss.
///
/// ```
/// use rubic_controllers::{Aimd, Controller, Sample};
/// let mut c = Aimd::new(0.5, 64);
/// assert_eq!(c.decide(Sample { throughput: 10.0, level: 40, round: 0 }), 41);
/// assert_eq!(c.decide(Sample { throughput: 1.0, level: 41, round: 1 }), 21); // 41 * 0.5 rounded
/// ```
#[derive(Debug, Clone)]
pub struct Aimd {
    alpha: f64,
    step: u32,
    tolerance: f64,
    max_level: u32,
    t_p: f64,
}

impl Aimd {
    /// Creates an AIMD controller with decrease factor `alpha ∈ (0,1)`
    /// and a +1 additive step.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    #[must_use]
    pub fn new(alpha: f64, max_level: u32) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        Aimd {
            alpha,
            step: 1,
            tolerance: 0.0,
            max_level: max_level.max(1),
            t_p: 0.0,
        }
    }

    /// Overrides the additive step; returns `self`.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    #[must_use]
    pub fn with_step(mut self, step: u32) -> Self {
        assert!(step >= 1, "step must be at least 1");
        self.step = step;
        self
    }

    /// Sets the throughput-comparison tolerance; returns `self`.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The multiplicative decrease factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Controller for Aimd {
    fn decide(&mut self, sample: Sample) -> u32 {
        let (proposal, phase) = if improved(sample.throughput, self.t_p, self.tolerance) {
            self.t_p = sample.throughput;
            (
                f64::from(sample.level) + f64::from(self.step),
                crate::trc::phase::GROWTH_LINEAR,
            )
        } else {
            // Forget T_p after a decrease (same rationale as Algorithm 2
            // line 35): the reduced level's lower absolute throughput
            // must not read as a fresh loss, or the controller would
            // spiral multiplicatively down to one thread instead of
            // producing the Fig. 3 sawtooth.
            self.t_p = 0.0;
            (
                f64::from(sample.level) * self.alpha,
                crate::trc::phase::REDUCE_MULT,
            )
        };
        let next = clamp_level(proposal, self.max_level);
        crate::trc::decision(
            phase,
            sample.throughput,
            sample.level,
            next,
            crate::trc::policy::AIMD,
        );
        next
    }

    fn reset(&mut self) {
        self.t_p = 0.0;
    }

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "AIMD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(thr: f64, level: u32, round: u64) -> Sample {
        Sample {
            throughput: thr,
            level,
            round,
        }
    }

    #[test]
    fn additive_up_multiplicative_down() {
        let mut c = Aimd::new(0.5, 128);
        assert_eq!(c.decide(s(10.0, 64, 0)), 65);
        assert_eq!(c.decide(s(1.0, 65, 1)), 33); // 32.5 rounds to 33
                                                 // The round after a decrease is a free-pass probe (T_p was
                                                 // forgotten), so even low throughput grows additively.
        assert_eq!(c.decide(s(0.5, 33, 2)), 34);
        // A loss against the re-established baseline halves again.
        c.decide(s(8.0, 34, 3)); // improvement, T_p = 8
        assert_eq!(c.decide(s(2.0, 35, 4)), 18); // 17.5 rounds to 18
    }

    #[test]
    fn sawtooth_average_around_75_percent() {
        // Fig. 3: perfectly scalable workload on 64 contexts, α = 0.5.
        // The average steady-state level should be ~48 (75% of 64).
        let mut c = Aimd::new(0.5, 128);
        let mut level = 1u32;
        let mut trace = Vec::new();
        for r in 0..2000 {
            let l = f64::from(level);
            let thr = if l <= 64.0 { l } else { 64.0 - (l - 64.0) };
            level = c.decide(s(thr, level, r));
            trace.push(level);
        }
        let tail = &trace[500..];
        let mean: f64 = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        assert!(
            (42.0..=56.0).contains(&mean),
            "AIMD steady-state mean {mean}, expected ~48"
        );
    }

    #[test]
    fn floor_at_one() {
        // Strictly decreasing throughput: every comparable round is a
        // loss, alternating with the free-pass probe round that follows
        // each decrease. The level must bottom out at 1 and never below.
        let mut c = Aimd::new(0.5, 64);
        c.decide(s(100.0, 32, 0));
        let mut level = 32u32;
        let mut min_seen = u32::MAX;
        let mut thr = 90.0;
        for r in 1..40u32 {
            level = c.decide(s(thr, level, u64::from(r)));
            thr *= 0.5;
            assert!(level >= 1);
            min_seen = min_seen.min(level);
        }
        // Decrease rounds alternate with free-pass probe (+1) rounds, so
        // the trajectory bottoms out hovering at 2-3 threads; the clamp
        // guarantees it never dips below 1.
        assert!(min_seen <= 2, "never got near the floor: min {min_seen}");
    }

    #[test]
    fn ceiling_at_max() {
        let mut c = Aimd::new(0.5, 8);
        let mut level = 1u32;
        for r in 0..50u32 {
            level = c.decide(s(f64::from(r + 1), level, u64::from(r)));
        }
        assert_eq!(level, 8);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_one() {
        let _ = Aimd::new(1.0, 64);
    }

    #[test]
    fn reset_clears_t_p() {
        let mut c = Aimd::new(0.5, 64);
        c.decide(s(100.0, 10, 0));
        c.reset();
        assert_eq!(c.decide(s(0.1, 10, 1)), 11);
    }
}
