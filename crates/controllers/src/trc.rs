//! Feature-gated bridge to `rubic-trace` for controller decisions.
//!
//! With the **`trace`** feature on, every [`Controller::decide`]
//! implementation in this crate emits a `Decision` event carrying its
//! inputs (observed throughput, current level), its output (new level),
//! the Algorithm 2 phase the decision ran in, and a policy id; RUBIC
//! additionally emits a `RubicState` event with its full CIMD state
//! (`T_p`, `L_max`). All no-ops when the feature is off.
//!
//! [`Controller::decide`]: crate::Controller::decide

/// Phase codes for the `Decision`/`RubicState` events' `code` byte.
///
/// These mirror `rubic_trace::codes::PHASE_*` — a feature-gated test
/// below pins the two tables together so exporter names cannot drift.
pub(crate) mod phase {
    pub(crate) const GROWTH_CUBIC: u8 = 0;
    pub(crate) const GROWTH_LINEAR: u8 = 1;
    pub(crate) const REDUCE_LINEAR: u8 = 2;
    pub(crate) const REDUCE_MULT: u8 = 3;
    pub(crate) const EXPONENTIAL: u8 = 4;
    pub(crate) const STATIC: u8 = 5;
}

/// Policy ids carried in the `Decision` event's `c` word, mirroring
/// `rubic_trace::codes::POLICY_NAMES` order.
pub(crate) mod policy {
    pub(crate) const RUBIC: u64 = 0;
    pub(crate) const EBS: u64 = 1;
    pub(crate) const F2C2: u64 = 2;
    pub(crate) const AIMD: u64 = 3;
    pub(crate) const DIRECTED_AIAD: u64 = 4;
    pub(crate) const CIMD: u64 = 5;
    pub(crate) const GREEDY: u64 = 6;
    pub(crate) const EQUAL_SHARE: u64 = 7;
    pub(crate) const FIXED: u64 = 8;
    pub(crate) const AIAD: u64 = 9;
}

#[cfg(feature = "trace")]
mod enabled {
    use rubic_trace::{emit, is_enabled, EventKind};

    /// One controller decision: phase, observed throughput, the level
    /// transition `level → new_level`, and which policy decided.
    #[inline]
    pub(crate) fn decision(phase: u8, throughput: f64, level: u32, new_level: u32, policy: u64) {
        if is_enabled() {
            emit(
                EventKind::Decision,
                phase,
                throughput.to_bits(),
                (u64::from(level) << 32) | u64::from(new_level),
                policy,
            );
        }
    }

    /// RUBIC's full controller state at a decision point.
    #[inline]
    pub(crate) fn rubic_state(phase: u8, t_p: f64, l_max: f64, level: u32, new_level: u32) {
        if is_enabled() {
            emit(
                EventKind::RubicState,
                phase,
                t_p.to_bits(),
                l_max.to_bits(),
                (u64::from(level) << 32) | u64::from(new_level),
            );
        }
    }
}

#[cfg(feature = "trace")]
pub(crate) use enabled::*;

#[cfg(not(feature = "trace"))]
mod disabled {
    #[inline(always)]
    pub(crate) fn decision(_phase: u8, _thr: f64, _level: u32, _new: u32, _policy: u64) {}

    #[inline(always)]
    pub(crate) fn rubic_state(_phase: u8, _t_p: f64, _l_max: f64, _level: u32, _new: u32) {}
}

#[cfg(not(feature = "trace"))]
pub(crate) use disabled::*;

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::{phase, policy};
    use rubic_trace::codes;

    #[test]
    fn phase_codes_match_trace_table() {
        assert_eq!(phase::GROWTH_CUBIC, codes::PHASE_GROWTH_CUBIC);
        assert_eq!(phase::GROWTH_LINEAR, codes::PHASE_GROWTH_LINEAR);
        assert_eq!(phase::REDUCE_LINEAR, codes::PHASE_REDUCE_LINEAR);
        assert_eq!(phase::REDUCE_MULT, codes::PHASE_REDUCE_MULT);
        assert_eq!(phase::EXPONENTIAL, codes::PHASE_EXPONENTIAL);
        assert_eq!(phase::STATIC, codes::PHASE_STATIC);
    }

    #[test]
    fn policy_ids_match_trace_table() {
        for (id, want) in [
            (policy::RUBIC, "RUBIC"),
            (policy::EBS, "EBS"),
            (policy::F2C2, "F2C2"),
            (policy::AIMD, "AIMD"),
            (policy::DIRECTED_AIAD, "DirectedAIAD"),
            (policy::CIMD, "CIMD"),
            (policy::GREEDY, "Greedy"),
            (policy::EQUAL_SHARE, "EqualShare"),
            (policy::FIXED, "Fixed"),
            (policy::AIAD, "AIAD"),
        ] {
            assert_eq!(codes::policy_name(id), want);
        }
    }
}
