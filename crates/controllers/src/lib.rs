//! Online parallelism-tuning controllers.
//!
//! This crate implements the RUBIC controller (Algorithm 2 of the paper)
//! and every competing allocation policy the paper evaluates against
//! (§4.3): **EBS** (pure additive-increase/additive-decrease, Didona et
//! al.), **F2C2** (AIAD with an initial exponential-growth phase,
//! Ravichandran & Pande), **AIMD** (the SPAA '15 brief-announcement
//! predecessor of RUBIC), **Greedy** (take every hardware context) and
//! **EqualShare** (centralised 1/N split). A pure **CIMD** controller
//! (cubic-increase/multiplicative-decrease without RUBIC's phase
//! interleaving) is provided for the §2.2 analysis figures and for
//! ablations.
//!
//! # The control model
//!
//! All policies share the feedback-loop shape described in §2 of the
//! paper: once per monitoring round (10 ms in the paper's setup) the
//! process measures its own throughput `T_c` (commit-rate), compares it
//! with the previous round's `T_p`, and picks the next parallelism level
//! through a growth function `f_INC` or a reduction function `f_DEC`.
//! The [`Controller`] trait captures exactly that interface: the runtime
//! (or the simulator) feeds a [`Sample`] per round and applies the
//! returned level.
//!
//! Decisions are **unilateral and decentralised**: a controller sees only
//! its own process's throughput, never other processes or global state.
//! This is the property that lets RUBIC work across co-located processes
//! with no communication (paper §1).
//!
//! # Example
//!
//! ```
//! use rubic_controllers::{Controller, Rubic, RubicConfig, Sample};
//!
//! let mut ctl = Rubic::new(RubicConfig::default(), 128);
//! let mut level = 1;
//! // A workload that scales perfectly to 64 threads and collapses after.
//! for round in 0..200 {
//!     let throughput = if level <= 64 { level as f64 } else { 90.0 - level as f64 };
//!     level = ctl.decide(Sample { throughput, level, round });
//! }
//! assert!(level >= 48 && level <= 80, "settled near the 64-context knee, got {level}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aiad;
pub mod aimd;
pub mod cimd;
pub mod cubic;
pub mod f2c2;
pub mod mapping;
pub mod policy;
pub mod rubic;
pub mod staticpol;
mod trc;

pub use aiad::{Aiad, DirectedAiad, Ebs};
pub use aimd::Aimd;
pub use cimd::Cimd;
pub use cubic::{cubic_level, CubicGrowth, CubicKConvention};
pub use f2c2::F2c2;
pub use mapping::{Mapper, MappingPolicy, Placement, Topology};
pub use policy::{Policy, PolicyConfig};
pub use rubic::{Rubic, RubicConfig};
pub use staticpol::{EqualShare, Fixed, Greedy};

/// One monitoring-round observation fed to a controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Throughput measured over the round that just completed (`T_c` in
    /// Algorithm 2). The paper uses commit-rate; any consistent,
    /// higher-is-better measure works.
    pub throughput: f64,
    /// The parallelism level that was in force during the round.
    pub level: u32,
    /// Monotonically increasing round index (diagnostic only; no policy
    /// in this crate keys decisions off absolute time).
    pub round: u64,
}

/// A feedback-driven parallelism controller.
///
/// Implementations are state machines: `decide` is called once per
/// monitoring round with the throughput observed at the current level and
/// returns the level for the next round, always within
/// `1..=max_level()`.
pub trait Controller: Send {
    /// Consumes one round's observation and returns the next parallelism
    /// level.
    fn decide(&mut self, sample: Sample) -> u32;

    /// Resets all internal state to the just-constructed condition (used
    /// between experiment repetitions).
    fn reset(&mut self);

    /// Upper bound on the level this controller will ever return (the
    /// thread-pool size `S`).
    fn max_level(&self) -> u32;

    /// Short human-readable policy name, as used in the paper's figures.
    fn name(&self) -> &'static str;
}

/// Clamps a fractional level proposal into the valid `1..=max` range,
/// rounding to nearest.
///
/// Every policy funnels its proposals through this so the invariant
/// `1 <= level <= max_level` holds unconditionally.
#[must_use]
pub(crate) fn clamp_level(proposal: f64, max: u32) -> u32 {
    if !proposal.is_finite() {
        return max.max(1);
    }
    let rounded = proposal.round();
    if rounded < 1.0 {
        1
    } else if rounded >= f64::from(max) {
        max.max(1)
    } else {
        rounded as u32
    }
}

/// Returns true when `current` counts as "no worse than" `previous` under
/// a relative tolerance.
///
/// Algorithm 2 compares `T_c >= T_p` exactly; with noisy real-world
/// throughput a small tolerance (e.g. 1–2%) avoids reacting to
/// measurement jitter. `tolerance = 0.0` reproduces the paper literally.
#[must_use]
pub(crate) fn improved(current: f64, previous: f64, tolerance: f64) -> bool {
    current >= previous * (1.0 - tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_level_bounds() {
        assert_eq!(clamp_level(0.2, 64), 1);
        assert_eq!(clamp_level(-5.0, 64), 1);
        assert_eq!(clamp_level(3.4, 64), 3);
        assert_eq!(clamp_level(3.5, 64), 4);
        assert_eq!(clamp_level(64.0, 64), 64);
        assert_eq!(clamp_level(1e12, 64), 64);
        assert_eq!(clamp_level(f64::NAN, 64), 64);
        assert_eq!(clamp_level(f64::INFINITY, 64), 64);
    }

    #[test]
    fn clamp_level_degenerate_max() {
        assert_eq!(clamp_level(5.0, 0), 1);
        assert_eq!(clamp_level(0.0, 0), 1);
    }

    #[test]
    fn improved_exact_and_tolerant() {
        assert!(improved(10.0, 10.0, 0.0));
        assert!(!improved(9.999, 10.0, 0.0));
        assert!(improved(9.9, 10.0, 0.02));
        assert!(!improved(9.7, 10.0, 0.02));
        // First round: previous == 0 is always an improvement.
        assert!(improved(0.0, 0.0, 0.0));
    }
}
