//! The cubic growth function of Equation (1) (paper §2.2), borrowed from
//! TCP CUBIC (Ha, Rhee & Xu, 2008).
//!
//! After a multiplicative decrease at level `L_max`, the parallelism level
//! grows as
//!
//! ```text
//! L_cubic(Δt) = L_max + β · (Δt − K)³
//! ```
//!
//! where `Δt` is the number of growth rounds since the last performance
//! loss, `β` scales the growth rate, and `K` is the inflection offset that
//! makes the curve plateau exactly at `L_max`: fast growth right after the
//! decrease (concave region), a *steady-state* plateau around `L_max`,
//! then an accelerating *probing* phase beyond it (convex region) that
//! searches for newly freed resources (Fig. 4).
//!
//! # The `K` constant — paper literal vs TCP-CUBIC convention
//!
//! The paper prints `K = ∛(L_max · α / β)` where `α` is the multiplicative
//! decrease factor (`L ← α·L_max`, α = 0.8 in the evaluation). Plugging
//! `Δt = 0` into Equation (1) with that `K` yields
//! `L_cubic(0) = L_max · (1 − α)` — i.e. 20% of `L_max`, *below* the level
//! the MD step just moved to (80%). TCP CUBIC defines
//! `K = ∛(W_max · β_drop / C)` with `β_drop` the *drop fraction*, which in
//! the paper's notation is `1 − α`; then `L_cubic(0) = α·L_max` and the
//! curve starts exactly where the MD step left the system, as Fig. 4
//! depicts. We implement both conventions ([`CubicKConvention`]); the
//! discrepancy is harmless in the full Algorithm 2 because of the
//! `max(L_cubic, L+1)` guard, but the TCP convention converges back to
//! the plateau noticeably faster — the `ablations` bench quantifies it.

/// Which definition of the cubic inflection offset `K` to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CubicKConvention {
    /// `K = ∛(L_max · (1−α) / β)` — TCP CUBIC's definition translated to
    /// the paper's notation, so that `L_cubic(0) = α·L_max` matches the
    /// multiplicative-decrease step. The default.
    #[default]
    TcpCubic,
    /// `K = ∛(L_max · α / β)` — Equation (1) exactly as printed.
    PaperLiteral,
}

/// Evaluates Equation (1): the cubic level proposal `Δt` growth-rounds
/// after a loss observed at `l_max`.
///
/// * `l_max` — the last level at which a performance loss was observed.
/// * `dt` — rounds elapsed since that loss (`Δt_max` in Algorithm 2).
/// * `alpha` — multiplicative decrease factor in `(0, 1)`.
/// * `beta` — growth-rate scaling factor (> 0).
///
/// The result is a raw (unclamped, possibly fractional or negative)
/// proposal; callers clamp it into the valid level range.
///
/// ```
/// use rubic_controllers::{cubic_level, CubicKConvention};
/// // Right after the loss (dt = 0) the TCP convention restarts from α·L_max.
/// let l0 = cubic_level(64.0, 0.0, 0.8, 0.1, CubicKConvention::TcpCubic);
/// assert!((l0 - 0.8 * 64.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn cubic_level(l_max: f64, dt: f64, alpha: f64, beta: f64, conv: CubicKConvention) -> f64 {
    debug_assert!(beta > 0.0, "beta must be positive");
    let drop_fraction = match conv {
        CubicKConvention::TcpCubic => 1.0 - alpha,
        CubicKConvention::PaperLiteral => alpha,
    };
    let k = (l_max * drop_fraction / beta).cbrt();
    let d = dt - k;
    l_max + beta * d * d * d
}

/// Stateful wrapper over [`cubic_level`] tracking `L_max` and `Δt_max`,
/// shared by the RUBIC and CIMD controllers.
#[derive(Debug, Clone, PartialEq)]
pub struct CubicGrowth {
    alpha: f64,
    beta: f64,
    convention: CubicKConvention,
    l_max: f64,
    dt: f64,
}

impl CubicGrowth {
    /// Creates a growth tracker with `L_max` initialised to 1 (paper
    /// §2.2: "At the beginning, L_max is set to 1"), so the very first
    /// probing phase explores the whole machine cubically.
    #[must_use]
    pub fn new(alpha: f64, beta: f64, convention: CubicKConvention) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        assert!(beta > 0.0, "beta must be positive, got {beta}");
        CubicGrowth {
            alpha,
            beta,
            convention,
            l_max: 1.0,
            dt: 0.0,
        }
    }

    /// The multiplicative decrease factor α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The growth scaling factor β.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The level at which the last performance loss was observed.
    #[must_use]
    pub fn l_max(&self) -> f64 {
        self.l_max
    }

    /// Rounds elapsed since the last loss.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advances one growth round (`Δt_max ← Δt_max + 1`, Algorithm 2
    /// line 8) and returns the cubic proposal for the new `Δt`.
    pub fn grow(&mut self) -> f64 {
        self.dt += 1.0;
        cubic_level(self.l_max, self.dt, self.alpha, self.beta, self.convention)
    }

    /// Records a performance loss at `level` *with* a multiplicative
    /// decrease: sets `L_max ← level`, resets `Δt_max ← 0`, and returns
    /// the post-decrease proposal `α · level` (Algorithm 2 lines 25,
    /// 27–28).
    pub fn multiplicative_decrease(&mut self, level: u32) -> f64 {
        self.l_max = f64::from(level);
        self.dt = 0.0;
        self.alpha * self.l_max
    }

    /// Resets only the elapsed-time clock (`Δt_max ← 0`), used when a
    /// loss is handled by a *linear* decrease that leaves `L_max` intact
    /// (Algorithm 2 line 25 on the linear-reduction path).
    pub fn reset_clock(&mut self) {
        self.dt = 0.0;
    }

    /// Restores the just-constructed state.
    pub fn reset(&mut self) {
        self.l_max = 1.0;
        self.dt = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: f64 = 0.8;
    const B: f64 = 0.1;

    #[test]
    fn tcp_convention_starts_at_alpha_lmax() {
        for lmax in [4.0, 16.0, 64.0, 100.0] {
            let l0 = cubic_level(lmax, 0.0, A, B, CubicKConvention::TcpCubic);
            assert!((l0 - A * lmax).abs() < 1e-9, "lmax {lmax}");
        }
    }

    #[test]
    fn paper_literal_starts_lower() {
        let l0 = cubic_level(64.0, 0.0, A, B, CubicKConvention::PaperLiteral);
        assert!((l0 - (1.0 - A) * 64.0).abs() < 1e-9);
    }

    #[test]
    fn plateau_at_lmax() {
        // At dt == K the curve passes exactly through L_max.
        let k = (64.0 * (1.0 - A) / B).cbrt();
        let l = cubic_level(64.0, k, A, B, CubicKConvention::TcpCubic);
        assert!((l - 64.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_nondecreasing_in_dt() {
        // A cubic in (dt - K)^3 is monotone increasing in dt.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..200 {
            let dt = f64::from(i) * 0.25;
            let l = cubic_level(64.0, dt, A, B, CubicKConvention::TcpCubic);
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn steady_state_then_probing_shape() {
        // Fig. 4: growth is fast right after the drop, slows near L_max,
        // then accelerates past it. Check the second difference changes
        // sign around K (concave -> convex).
        let k = (64.0 * (1.0 - A) / B).cbrt();
        let f = |dt: f64| cubic_level(64.0, dt, A, B, CubicKConvention::TcpCubic);
        let before = f(k - 1.0) - 2.0 * f(k - 1.5) + f(k - 2.0); // concave: negative
        let after = f(k + 2.0) - 2.0 * f(k + 1.5) + f(k + 1.0); // convex: positive
        assert!(before < 0.0, "expected concave before K, got {before}");
        assert!(after > 0.0, "expected convex after K, got {after}");
    }

    #[test]
    fn initial_probe_reaches_64_quickly() {
        // §4.6 / Fig. 10c: starting from L_max = 1, the probing phase
        // should exceed 64 threads within a few dozen rounds.
        let mut g = CubicGrowth::new(A, B, CubicKConvention::TcpCubic);
        let mut rounds = 0;
        while g.grow() < 64.0 {
            rounds += 1;
            assert!(rounds < 50, "probing too slow");
        }
        assert!(rounds >= 5, "probing unrealistically fast: {rounds} rounds");
    }

    #[test]
    fn multiplicative_decrease_sets_state() {
        let mut g = CubicGrowth::new(A, B, CubicKConvention::TcpCubic);
        for _ in 0..10 {
            g.grow();
        }
        let after = g.multiplicative_decrease(64);
        assert!((after - 51.2).abs() < 1e-9);
        assert_eq!(g.dt(), 0.0);
        assert_eq!(g.l_max(), 64.0);
    }

    #[test]
    fn reset_clock_keeps_lmax() {
        let mut g = CubicGrowth::new(A, B, CubicKConvention::TcpCubic);
        g.multiplicative_decrease(40);
        g.grow();
        g.reset_clock();
        assert_eq!(g.dt(), 0.0);
        assert_eq!(g.l_max(), 40.0);
    }

    #[test]
    fn reset_restores_initial() {
        let mut g = CubicGrowth::new(A, B, CubicKConvention::TcpCubic);
        g.multiplicative_decrease(64);
        g.grow();
        g.reset();
        assert_eq!(g.l_max(), 1.0);
        assert_eq!(g.dt(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = CubicGrowth::new(1.5, B, CubicKConvention::TcpCubic);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        let _ = CubicGrowth::new(A, 0.0, CubicKConvention::TcpCubic);
    }
}
