//! Thread-to-socket mapping policies — the *where* axis of tuning.
//!
//! RUBIC and the competing policies in [`policy`](crate::policy) decide
//! *how many* threads a process runs. On a multi-socket machine that is
//! only half the allocation problem: Pasqualin et al.'s survey of
//! thread/data mapping in STM (PAPERS.md) shows *where* those threads
//! run rivals the concurrency level as a performance lever. This module
//! supplies the second axis as a composable policy:
//!
//! * [`Topology`] — the socket layout a mapper places onto.
//! * [`Placement`] — a concrete assignment (threads per socket) plus a
//!   stability bit (whether the assignment is pinned or left to the OS).
//! * [`Mapper`] — the per-round decision interface, symmetric with
//!   [`Controller`](crate::Controller): feed it the level the
//!   concurrency controller chose plus a conflict signal, get back a
//!   placement. Decisions stay unilateral and decentralised — a mapper
//!   sees only its own process, never its neighbours.
//! * [`MappingPolicy`] — the enum the benches and the simulator sweep:
//!   `blind` (no affinity, the OS default), `compact` (fill sockets
//!   before spilling), `scatter` (round-robin across sockets) and
//!   `adaptive` (compact under contention, scatter when conflict-free).
//!
//! The trade-off the policies navigate (DESIGN.md §17): packing a
//! conflict-heavy workload onto one socket keeps its transactional
//! metadata in one LLC (cheap conflicts), while spreading a
//! conflict-free workload buys it the aggregate memory bandwidth of
//! every socket. `adaptive` switches between the two on the observed
//! conflict signal, with hysteresis so measurement jitter cannot make
//! it thrash.

/// The socket layout of a machine, as seen by a mapping policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of sockets (NUMA nodes / LLC domains).
    pub sockets: u32,
    /// Hardware contexts per socket.
    pub contexts_per_socket: u32,
}

impl Topology {
    /// A flat machine: one socket holding all `contexts` contexts.
    #[must_use]
    pub fn flat(contexts: u32) -> Self {
        Topology {
            sockets: 1,
            contexts_per_socket: contexts.max(1),
        }
    }

    /// The paper's testbed: 4 sockets × 16 contexts (AMD Opteron 6272).
    #[must_use]
    pub fn paper() -> Self {
        Topology {
            sockets: 4,
            contexts_per_socket: 16,
        }
    }

    /// Total hardware contexts.
    #[must_use]
    pub fn total_contexts(&self) -> u32 {
        self.sockets * self.contexts_per_socket
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper()
    }
}

/// A concrete thread-to-socket assignment for one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Threads assigned to each socket (`per_socket.len() == sockets`).
    pub per_socket: Vec<u32>,
    /// True when the assignment is pinned (thread affinity): the
    /// threads stay put and keep their caches warm. False models the
    /// no-affinity OS default, where the scheduler migrates threads
    /// freely — the *expected* occupancy is spread out, but no socket
    /// ever retains a working set.
    pub stable: bool,
}

impl Placement {
    /// Fill sockets in order: socket 0 first, spill to 1 only when 0 is
    /// at capacity, and so on.
    #[must_use]
    pub fn compact(level: u32, topo: &Topology) -> Self {
        let mut per_socket = vec![0u32; topo.sockets as usize];
        let mut remaining = level;
        for slot in &mut per_socket {
            let take = remaining.min(topo.contexts_per_socket);
            *slot = take;
            remaining -= take;
        }
        // Past machine capacity, wrap the overflow round-robin (the
        // threads exist; they just oversubscribe).
        let mut s = 0usize;
        while remaining > 0 {
            per_socket[s] += 1;
            remaining -= 1;
            s = (s + 1) % per_socket.len();
        }
        Placement {
            per_socket,
            stable: true,
        }
    }

    /// Spread threads round-robin across all sockets, pinned.
    #[must_use]
    pub fn scatter(level: u32, topo: &Topology) -> Self {
        let n = topo.sockets as usize;
        let mut per_socket = vec![level / topo.sockets; n];
        for slot in per_socket.iter_mut().take((level % topo.sockets) as usize) {
            *slot += 1;
        }
        Placement {
            per_socket,
            stable: true,
        }
    }

    /// The no-affinity OS default: occupancy spreads like
    /// [`scatter`](Placement::scatter), but nothing is pinned.
    #[must_use]
    pub fn blind(level: u32, topo: &Topology) -> Self {
        Placement {
            stable: false,
            ..Placement::scatter(level, topo)
        }
    }

    /// Total threads placed.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.per_socket.iter().sum()
    }

    /// Sockets with at least one thread.
    #[must_use]
    pub fn sockets_used(&self) -> u32 {
        self.per_socket.iter().filter(|&&n| n > 0).count() as u32
    }

    /// How spread out the placement is: `1 − max_socket/total`, i.e. the
    /// fraction of threads that live off the most-populated socket.
    /// `0.0` when every thread shares one socket (or nothing is placed),
    /// approaching `1 − 1/sockets` for a perfectly even spread.
    #[must_use]
    pub fn spread_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let max = self.per_socket.iter().copied().max().unwrap_or(0);
        1.0 - f64::from(max) / f64::from(total)
    }
}

/// A per-round thread-placement decision maker, symmetric with
/// [`Controller`](crate::Controller): the concurrency controller picks
/// the level, the mapper picks where those threads go.
pub trait Mapper: Send {
    /// Places `level` threads on `topo`. `conflict_signal` is the
    /// process's own contention observation in `[0, 1]` (abort rate on
    /// the real runtime; the efficiency deficit in the simulator) —
    /// only `adaptive` consumes it.
    fn place(&mut self, level: u32, topo: &Topology, conflict_signal: f64) -> Placement;

    /// Resets internal state (hysteresis) between repetitions.
    fn reset(&mut self);

    /// Policy name, as reported in benches.
    fn name(&self) -> &'static str;
}

/// Stateless mapper for the three fixed shapes.
struct FixedMapper {
    policy: MappingPolicy,
}

impl Mapper for FixedMapper {
    fn place(&mut self, level: u32, topo: &Topology, _conflict_signal: f64) -> Placement {
        match self.policy {
            MappingPolicy::Compact => Placement::compact(level, topo),
            MappingPolicy::Scatter => Placement::scatter(level, topo),
            _ => Placement::blind(level, topo),
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        self.policy.label()
    }
}

/// Compact under contention, scatter when conflict-free, with
/// hysteresis: the mode only flips when the signal crosses the far
/// threshold, so jitter around either threshold cannot make placement
/// oscillate (every flip invalidates warmed caches — worse than either
/// steady state).
struct AdaptiveMapper {
    /// Signal above which the mapper packs (conflicts dominate).
    high: f64,
    /// Signal below which the mapper spreads (bandwidth dominates).
    low: f64,
    compact_mode: bool,
}

impl AdaptiveMapper {
    fn new() -> Self {
        AdaptiveMapper {
            high: 0.5,
            low: 0.35,
            compact_mode: true,
        }
    }
}

impl Mapper for AdaptiveMapper {
    fn place(&mut self, level: u32, topo: &Topology, conflict_signal: f64) -> Placement {
        if conflict_signal >= self.high {
            self.compact_mode = true;
        } else if conflict_signal <= self.low {
            self.compact_mode = false;
        }
        if self.compact_mode {
            Placement::compact(level, topo)
        } else {
            Placement::scatter(level, topo)
        }
    }

    fn reset(&mut self) {
        self.compact_mode = true;
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// The mapping-policy axis: which [`Mapper`] a process runs.
///
/// Orthogonal to [`Policy`](crate::Policy) — every concurrency
/// controller composes with every mapping policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingPolicy {
    /// No placement decision: threads float wherever the OS puts them
    /// (the pre-topology behaviour, and the baseline the aware policies
    /// are measured against).
    #[default]
    Blind,
    /// Fill sockets before spilling: minimal cross-socket communication.
    Compact,
    /// Round-robin across sockets: maximal aggregate memory bandwidth.
    Scatter,
    /// Compact when the conflict signal is high, scatter when low.
    AdaptiveAbort,
}

impl MappingPolicy {
    /// Every mapping policy, in sweep order.
    pub const ALL: [MappingPolicy; 4] = [
        MappingPolicy::Blind,
        MappingPolicy::Compact,
        MappingPolicy::Scatter,
        MappingPolicy::AdaptiveAbort,
    ];

    /// Parses a policy name as used on bench command lines.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "blind" | "none" => Some(MappingPolicy::Blind),
            "compact" => Some(MappingPolicy::Compact),
            "scatter" => Some(MappingPolicy::Scatter),
            "adaptive" | "adaptive-abort" => Some(MappingPolicy::AdaptiveAbort),
            _ => None,
        }
    }

    /// The name reported in benches and figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MappingPolicy::Blind => "blind",
            MappingPolicy::Compact => "compact",
            MappingPolicy::Scatter => "scatter",
            MappingPolicy::AdaptiveAbort => "adaptive",
        }
    }

    /// Builds the mapper.
    #[must_use]
    pub fn build(&self) -> Box<dyn Mapper> {
        match self {
            MappingPolicy::AdaptiveAbort => Box::new(AdaptiveMapper::new()),
            p => Box::new(FixedMapper { policy: *p }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_is_4x16() {
        let t = Topology::paper();
        assert_eq!(t.sockets, 4);
        assert_eq!(t.contexts_per_socket, 16);
        assert_eq!(t.total_contexts(), 64);
    }

    #[test]
    fn compact_fills_before_spilling() {
        let t = Topology::paper();
        assert_eq!(Placement::compact(7, &t).per_socket, vec![7, 0, 0, 0]);
        assert_eq!(Placement::compact(16, &t).per_socket, vec![16, 0, 0, 0]);
        assert_eq!(Placement::compact(17, &t).per_socket, vec![16, 1, 0, 0]);
        assert_eq!(Placement::compact(64, &t).per_socket, vec![16, 16, 16, 16]);
        // Past capacity: overflow wraps, nothing is lost.
        let over = Placement::compact(70, &t);
        assert_eq!(over.total(), 70);
        assert_eq!(over.per_socket, vec![18, 18, 17, 17]);
    }

    #[test]
    fn scatter_spreads_evenly() {
        let t = Topology::paper();
        assert_eq!(Placement::scatter(6, &t).per_socket, vec![2, 2, 1, 1]);
        assert_eq!(Placement::scatter(64, &t).per_socket, vec![16, 16, 16, 16]);
        assert_eq!(Placement::scatter(1, &t).sockets_used(), 1);
    }

    #[test]
    fn blind_spreads_but_is_unstable() {
        let t = Topology::paper();
        let b = Placement::blind(8, &t);
        assert_eq!(b.per_socket, Placement::scatter(8, &t).per_socket);
        assert!(!b.stable);
        assert!(Placement::scatter(8, &t).stable);
        assert!(Placement::compact(8, &t).stable);
    }

    #[test]
    fn spread_fraction_bounds() {
        let t = Topology::paper();
        assert_eq!(Placement::compact(10, &t).spread_fraction(), 0.0);
        let s = Placement::scatter(64, &t).spread_fraction();
        assert!((s - 0.75).abs() < 1e-12, "even spread on 4 sockets: {s}");
        // Empty placement is defined (no NaN).
        assert_eq!(Placement::scatter(0, &t).spread_fraction(), 0.0);
        // Single-socket topology never spreads.
        assert_eq!(
            Placement::scatter(10, &Topology::flat(64)).spread_fraction(),
            0.0
        );
    }

    #[test]
    fn placements_conserve_threads() {
        let t = Topology::paper();
        for level in 0..=128 {
            assert_eq!(Placement::compact(level, &t).total(), level);
            assert_eq!(Placement::scatter(level, &t).total(), level);
            assert_eq!(Placement::blind(level, &t).total(), level);
        }
    }

    #[test]
    fn adaptive_switches_with_hysteresis() {
        let t = Topology::paper();
        let mut m = MappingPolicy::AdaptiveAbort.build();
        // Starts compact.
        assert_eq!(m.place(32, &t, 0.45).sockets_used(), 2);
        // Low signal: spread.
        assert_eq!(m.place(32, &t, 0.1).sockets_used(), 4);
        // Mid-band signal: stays spread (hysteresis).
        assert_eq!(m.place(32, &t, 0.45).sockets_used(), 4);
        // High signal: pack again.
        assert_eq!(m.place(32, &t, 0.8).sockets_used(), 2);
        // Mid-band again: stays packed.
        assert_eq!(m.place(32, &t, 0.45).sockets_used(), 2);
        m.reset();
        assert_eq!(m.place(32, &t, 0.45).sockets_used(), 2);
    }

    #[test]
    fn parse_and_label_round_trip() {
        for p in MappingPolicy::ALL {
            assert_eq!(MappingPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(MappingPolicy::parse("none"), Some(MappingPolicy::Blind));
        assert_eq!(
            MappingPolicy::parse("adaptive-abort"),
            Some(MappingPolicy::AdaptiveAbort)
        );
        assert_eq!(MappingPolicy::parse("nope"), None);
        assert_eq!(MappingPolicy::default(), MappingPolicy::Blind);
    }
}
