//! Non-adaptive allocation policies: Greedy, EqualShare and Fixed
//! (paper §4.3).
//!
//! **Greedy** is the status quo: every process spawns as many threads as
//! there are hardware contexts, ignoring both its own scalability and its
//! neighbours — the worst performer in every pairwise experiment
//! (Fig. 7a, ~6× below RUBIC).
//!
//! **EqualShare** is the naïve oversubscription-avoidance heuristic: a
//! *central* entity hands each of the `N` processes `C/N` contexts,
//! regardless of workload. It avoids oversubscription but wastes contexts
//! on processes that cannot use them (e.g. 32 threads for Intruder, whose
//! peak is 7).
//!
//! **Fixed** pins an arbitrary level — the building block for
//! scalability sweeps (Fig. 1, Fig. 6).

use crate::{clamp_level, Controller, Sample};

/// Greedy: always request the whole machine.
#[derive(Debug, Clone)]
pub struct Greedy {
    hw_contexts: u32,
    max_level: u32,
}

impl Greedy {
    /// Creates a Greedy policy that always claims `hw_contexts` threads
    /// (capped by the pool size `max_level`).
    #[must_use]
    pub fn new(hw_contexts: u32, max_level: u32) -> Self {
        Greedy {
            hw_contexts: hw_contexts.max(1),
            max_level: max_level.max(1),
        }
    }
}

impl Controller for Greedy {
    fn decide(&mut self, sample: Sample) -> u32 {
        let next = clamp_level(f64::from(self.hw_contexts), self.max_level);
        crate::trc::decision(
            crate::trc::phase::STATIC,
            sample.throughput,
            sample.level,
            next,
            crate::trc::policy::GREEDY,
        );
        next
    }

    fn reset(&mut self) {}

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "Greedy"
    }
}

/// EqualShare: a static `C / N` split decided centrally.
///
/// The split is computed at construction (the central entity knows `N`);
/// the controller itself never adapts. Rounds down, with a floor of one
/// thread, so `N > C` degrades to one thread each.
#[derive(Debug, Clone)]
pub struct EqualShare {
    share: u32,
    max_level: u32,
}

impl EqualShare {
    /// Creates the equal-share policy for a machine with `hw_contexts`
    /// contexts shared by `n_processes` processes.
    ///
    /// # Panics
    /// Panics if `n_processes` is zero.
    #[must_use]
    pub fn new(hw_contexts: u32, n_processes: u32, max_level: u32) -> Self {
        assert!(n_processes >= 1, "need at least one process");
        EqualShare {
            share: (hw_contexts / n_processes).max(1),
            max_level: max_level.max(1),
        }
    }

    /// The per-process share this policy hands out.
    #[must_use]
    pub fn share(&self) -> u32 {
        self.share
    }
}

impl Controller for EqualShare {
    fn decide(&mut self, sample: Sample) -> u32 {
        let next = clamp_level(f64::from(self.share), self.max_level);
        crate::trc::decision(
            crate::trc::phase::STATIC,
            sample.throughput,
            sample.level,
            next,
            crate::trc::policy::EQUAL_SHARE,
        );
        next
    }

    fn reset(&mut self) {}

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "EqualShare"
    }
}

/// Fixed: pin the parallelism level to a constant (scalability sweeps).
#[derive(Debug, Clone)]
pub struct Fixed {
    level: u32,
    max_level: u32,
}

impl Fixed {
    /// Creates a policy pinned at `level` threads.
    #[must_use]
    pub fn new(level: u32, max_level: u32) -> Self {
        Fixed {
            level: level.max(1),
            max_level: max_level.max(1),
        }
    }
}

impl Controller for Fixed {
    fn decide(&mut self, sample: Sample) -> u32 {
        let next = clamp_level(f64::from(self.level), self.max_level);
        crate::trc::decision(
            crate::trc::phase::STATIC,
            sample.throughput,
            sample.level,
            next,
            crate::trc::policy::FIXED,
        );
        next
    }

    fn reset(&mut self) {}

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "Fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Sample {
        Sample {
            throughput: 1.0,
            level: 1,
            round: 0,
        }
    }

    #[test]
    fn greedy_takes_everything() {
        let mut g = Greedy::new(64, 128);
        assert_eq!(g.decide(s()), 64);
        assert_eq!(g.name(), "Greedy");
    }

    #[test]
    fn greedy_capped_by_pool() {
        let mut g = Greedy::new(64, 32);
        assert_eq!(g.decide(s()), 32);
    }

    #[test]
    fn equal_share_splits() {
        let mut e = EqualShare::new(64, 2, 128);
        assert_eq!(e.share(), 32);
        assert_eq!(e.decide(s()), 32);
        let mut e3 = EqualShare::new(64, 3, 128);
        assert_eq!(e3.decide(s()), 21);
    }

    #[test]
    fn equal_share_floor_one() {
        let mut e = EqualShare::new(4, 100, 128);
        assert_eq!(e.decide(s()), 1);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn equal_share_rejects_zero_processes() {
        let _ = EqualShare::new(64, 0, 128);
    }

    #[test]
    fn fixed_is_constant() {
        let mut f = Fixed::new(7, 64);
        for _ in 0..5 {
            assert_eq!(f.decide(s()), 7);
        }
    }

    #[test]
    fn fixed_clamped() {
        let mut f = Fixed::new(100, 64);
        assert_eq!(f.decide(s()), 64);
        let mut f0 = Fixed::new(0, 64);
        assert_eq!(f0.decide(s()), 1);
    }
}
