//! Pure CIMD (cubic-increase / multiplicative-decrease) — the §2.2 model
//! that motivates RUBIC, without Algorithm 2's growth/reduction
//! interleaving.
//!
//! Every improvement round grows cubically (Equation 1); every loss round
//! takes an immediate multiplicative decrease. This is the controller
//! behind Fig. 5 (expected CIMD behaviour on a 64-core machine, ~94%
//! utilisation) and the baseline for the interleaving ablations: RUBIC =
//! CIMD + adjacent-level comparison + loss-debouncing.

use crate::cubic::{CubicGrowth, CubicKConvention};
use crate::{clamp_level, improved, Controller, Sample};

/// Pure cubic-increase / multiplicative-decrease controller.
///
/// ```
/// use rubic_controllers::{Cimd, Controller, Sample};
/// let mut c = Cimd::new(0.5, 0.1, 128);
/// let next = c.decide(Sample { throughput: 5.0, level: 1, round: 0 });
/// assert!(next >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Cimd {
    cubic: CubicGrowth,
    tolerance: f64,
    max_level: u32,
    t_p: f64,
}

impl Cimd {
    /// Creates a CIMD controller (§2.2 uses α = 0.5, β = 0.1 for its
    /// illustration; RUBIC's evaluation constants are α = 0.8, β = 0.1).
    ///
    /// # Panics
    /// Panics if `alpha ∉ (0,1)` or `beta <= 0`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64, max_level: u32) -> Self {
        Cimd {
            cubic: CubicGrowth::new(alpha, beta, CubicKConvention::default()),
            tolerance: 0.0,
            max_level: max_level.max(1),
            t_p: 0.0,
        }
    }

    /// Selects the `K`-constant convention; returns `self`.
    #[must_use]
    pub fn with_convention(mut self, conv: CubicKConvention) -> Self {
        let (a, b) = (self.cubic.alpha(), self.cubic.beta());
        self.cubic = CubicGrowth::new(a, b, conv);
        self
    }

    /// Sets the throughput-comparison tolerance; returns `self`.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

impl Controller for Cimd {
    fn decide(&mut self, sample: Sample) -> u32 {
        let (proposal, phase) = if improved(sample.throughput, self.t_p, self.tolerance) {
            self.t_p = sample.throughput;
            // Guard with +1 so growth never stalls below L_max after an
            // MD (the cubic proposal can sit under the current level).
            (
                self.cubic.grow().max(f64::from(sample.level) + 1.0),
                crate::trc::phase::GROWTH_CUBIC,
            )
        } else {
            self.t_p = 0.0; // re-probe from the reduced level next round
            (
                self.cubic.multiplicative_decrease(sample.level),
                crate::trc::phase::REDUCE_MULT,
            )
        };
        let next = clamp_level(proposal, self.max_level);
        crate::trc::decision(
            phase,
            sample.throughput,
            sample.level,
            next,
            crate::trc::policy::CIMD,
        );
        next
    }

    fn reset(&mut self) {
        self.cubic.reset();
        self.t_p = 0.0;
    }

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "CIMD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(thr: f64, level: u32, round: u64) -> Sample {
        Sample {
            throughput: thr,
            level,
            round,
        }
    }

    fn drive(c: &mut Cimd, peak: f64, rounds: usize) -> Vec<u32> {
        let mut level = 1u32;
        let mut out = Vec::new();
        for r in 0..rounds {
            let l = f64::from(level);
            let thr = if l <= peak { l } else { peak - (l - peak) };
            level = c.decide(s(thr, level, r as u64));
            out.push(level);
        }
        out
    }

    #[test]
    fn losses_cut_multiplicatively_every_time() {
        let mut c = Cimd::new(0.5, 0.1, 128);
        c.decide(s(100.0, 64, 0));
        let l1 = c.decide(s(10.0, 64, 1));
        assert_eq!(l1, 32);
        // T_p was reset, so the next round grows; then another loss cuts
        // multiplicatively again (no linear debounce in pure CIMD).
        let l2 = c.decide(s(5.0, l1, 2)); // improvement vs 0 -> grow
        assert!(l2 > l1);
        let l3 = c.decide(s(1.0, l2, 3));
        assert_eq!(l3, (f64::from(l2) * 0.5).round() as u32);
    }

    #[test]
    fn utilization_beats_aimd() {
        // §2.2's headline: CIMD ~94% vs AIMD ~75% on a perfectly
        // scalable workload with a 64-context knee.
        let mut cimd = Cimd::new(0.5, 0.1, 128);
        let trace = drive(&mut cimd, 64.0, 2000);
        let tail = &trace[500..];
        let cimd_util: f64 =
            tail.iter().map(|&l| f64::from(l).min(64.0)).sum::<f64>() / (tail.len() as f64 * 64.0);

        let mut aimd = crate::Aimd::new(0.5, 128);
        let mut level = 1u32;
        let mut atrace = Vec::new();
        for r in 0..2000 {
            let l = f64::from(level);
            let thr = if l <= 64.0 { l } else { 64.0 - (l - 64.0) };
            level = aimd.decide(s(thr, level, r));
            atrace.push(level);
        }
        let atail = &atrace[500..];
        let aimd_util: f64 = atail.iter().map(|&l| f64::from(l).min(64.0)).sum::<f64>()
            / (atail.len() as f64 * 64.0);

        assert!(
            cimd_util > aimd_util + 0.05,
            "CIMD {cimd_util:.3} should clearly beat AIMD {aimd_util:.3}"
        );
        assert!(cimd_util >= 0.85, "CIMD utilisation {cimd_util:.3} < 0.85");
    }

    #[test]
    fn stays_in_bounds() {
        let mut c = Cimd::new(0.8, 0.1, 16);
        let mut level = 1u32;
        for r in 0..500 {
            let thr = if r % 5 == 0 { 0.0 } else { 1e6 };
            level = c.decide(s(thr, level, r));
            assert!((1..=16).contains(&level));
        }
    }

    #[test]
    fn reset_roundtrip() {
        let mut c = Cimd::new(0.8, 0.1, 64);
        let fresh = {
            let mut c2 = Cimd::new(0.8, 0.1, 64);
            c2.decide(s(10.0, 1, 0))
        };
        c.decide(s(10.0, 1, 0));
        c.decide(s(1.0, 30, 1));
        c.reset();
        assert_eq!(c.decide(s(10.0, 1, 0)), fresh);
    }
}
