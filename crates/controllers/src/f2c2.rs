//! F2C2 — flux-based feedback-driven concurrency control (Ravichandran &
//! Pande, IPDPS '14), as characterised in the paper's §4.3:
//!
//! > "F2C2 benefits from an initial exponential growth phase for faster
//! > convergence to the optimal level. By this mechanism, the controller
//! > initially doubles the parallelism level instead of increasing it
//! > by 1. After the first performance loss, F2C2 halves the parallelism
//! > level and switches to pure AIAD until the end, as in EBS."
//!
//! The paper finds this initial exponential phase pathological in
//! multi-process settings (Fig. 10a): the doubling overshoots past the
//! number of hardware contexts onto a performance plateau that the ±1
//! AIAD phase can never climb out of, so the controller never converges.

use crate::{clamp_level, improved, Controller, Sample};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Initial fast-convergence phase: double on improvement.
    Exponential,
    /// Steady phase after the first loss: ±1 hill climbing.
    Aiad,
}

/// The F2C2 controller.
///
/// ```
/// use rubic_controllers::{Controller, F2c2, Sample};
/// let mut c = F2c2::new(128);
/// // Exponential phase: 4 -> 8.
/// assert_eq!(c.decide(Sample { throughput: 10.0, level: 4, round: 0 }), 8);
/// // First loss: halve and drop to AIAD.
/// assert_eq!(c.decide(Sample { throughput: 1.0, level: 8, round: 1 }), 4);
/// // AIAD from here on.
/// assert_eq!(c.decide(Sample { throughput: 2.0, level: 4, round: 2 }), 5);
/// ```
#[derive(Debug, Clone)]
pub struct F2c2 {
    phase: Phase,
    tolerance: f64,
    max_level: u32,
    t_p: f64,
}

impl F2c2 {
    /// Creates an F2C2 controller for a pool of `max_level` threads.
    #[must_use]
    pub fn new(max_level: u32) -> Self {
        F2c2 {
            phase: Phase::Exponential,
            tolerance: 0.0,
            max_level: max_level.max(1),
            t_p: 0.0,
        }
    }

    /// Sets the throughput-comparison tolerance; returns `self`.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// True while the controller is still in its initial exponential
    /// growth phase.
    #[must_use]
    pub fn in_exponential_phase(&self) -> bool {
        self.phase == Phase::Exponential
    }
}

impl Controller for F2c2 {
    fn decide(&mut self, sample: Sample) -> u32 {
        let l = f64::from(sample.level);
        let up = improved(sample.throughput, self.t_p, self.tolerance);
        let (proposal, trc_phase) = match (self.phase, up) {
            (Phase::Exponential, true) => (l * 2.0, crate::trc::phase::EXPONENTIAL),
            (Phase::Exponential, false) => {
                self.phase = Phase::Aiad;
                (l / 2.0, crate::trc::phase::REDUCE_MULT)
            }
            (Phase::Aiad, true) => (l + 1.0, crate::trc::phase::GROWTH_LINEAR),
            (Phase::Aiad, false) => (l - 1.0, crate::trc::phase::REDUCE_LINEAR),
        };
        self.t_p = sample.throughput;
        let next = clamp_level(proposal, self.max_level);
        crate::trc::decision(
            trc_phase,
            sample.throughput,
            sample.level,
            next,
            crate::trc::policy::F2C2,
        );
        next
    }

    fn reset(&mut self) {
        self.phase = Phase::Exponential;
        self.t_p = 0.0;
    }

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "F2C2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(thr: f64, level: u32, round: u64) -> Sample {
        Sample {
            throughput: thr,
            level,
            round,
        }
    }

    #[test]
    fn doubles_until_first_loss() {
        let mut c = F2c2::new(256);
        let mut level = 1u32;
        let levels: Vec<u32> = (0..6)
            .map(|r| {
                level = c.decide(s(f64::from(level), level, r));
                level
            })
            .collect();
        assert_eq!(levels, vec![2, 4, 8, 16, 32, 64]);
        assert!(c.in_exponential_phase());
    }

    #[test]
    fn halves_once_then_aiad() {
        let mut c = F2c2::new(256);
        c.decide(s(10.0, 16, 0)); // improve -> 32
        let after_loss = c.decide(s(1.0, 32, 1));
        assert_eq!(after_loss, 16);
        assert!(!c.in_exponential_phase());
        // Subsequent losses are only -1 (no more halving).
        assert_eq!(c.decide(s(0.5, 16, 2)), 15);
        assert_eq!(c.decide(s(0.4, 15, 3)), 14);
    }

    #[test]
    fn overshoot_plateau_pathology() {
        // Fig. 10a: on a workload whose throughput plateaus past the
        // context count, the exponential phase overshoots (e.g. to 128)
        // and the AIAD phase never recovers because the plateau reads as
        // "no loss" every round.
        let mut c = F2c2::new(128);
        let mut level = 1u32;
        let mut trace = Vec::new();
        for r in 0..300 {
            let l = f64::from(level);
            // Scales to 64, then *flat* (oversubscription hides inside
            // time slicing; per-process commit-rate stays roughly
            // constant).
            let thr = l.min(64.0);
            level = c.decide(s(thr, level, r));
            trace.push(level);
        }
        let tail = &trace[200..];
        let mean: f64 = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        assert!(
            mean > 64.0,
            "expected F2C2 stuck above the 64-context line, mean {mean}"
        );
    }

    #[test]
    fn respects_bounds() {
        let mut c = F2c2::new(32);
        let mut level = 1u32;
        for r in 0..100 {
            let thr = if r % 4 == 0 { 0.0 } else { 1e9 };
            level = c.decide(s(thr, level, r));
            assert!((1..=32).contains(&level));
        }
    }

    #[test]
    fn floor_at_one_in_aiad() {
        let mut c = F2c2::new(64);
        c.decide(s(100.0, 2, 0));
        let mut level = 2u32;
        for r in 1..20u32 {
            level = c.decide(s(100.0 - f64::from(r), level, u64::from(r)));
        }
        assert_eq!(level, 1);
    }

    #[test]
    fn reset_restores_exponential_phase() {
        let mut c = F2c2::new(64);
        c.decide(s(10.0, 4, 0));
        c.decide(s(1.0, 8, 1)); // leave exponential phase
        assert!(!c.in_exponential_phase());
        c.reset();
        assert!(c.in_exponential_phase());
        assert_eq!(c.decide(s(5.0, 4, 2)), 8);
    }
}
