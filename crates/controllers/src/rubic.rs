//! The RUBIC controller — a faithful port of Algorithm 2.
//!
//! RUBIC is a CIMD (cubic-increase / multiplicative-decrease) feedback
//! controller with two refinements over the pure CIMD model of §2.2:
//!
//! 1. **Growth interleaving** (§3.2): cubic growth rounds alternate with
//!    single-step (+1) linear rounds, so the controller always compares
//!    two *adjacent* levels and makes more accurate decisions.
//! 2. **Reduction interleaving** (§3.3): on a performance drop the
//!    controller first tries a cheap linear decrease (−2); only if the
//!    loss persists in the next round does it take the expensive
//!    multiplicative decrease (`L_max ← L`, `L ← α·L`). This avoids
//!    paying an MD for transient dips while still reacting
//!    multiplicatively to genuine regime changes (a new process joining,
//!    for instance).
//!
//! State transitions follow Algorithm 2 line-for-line, including the two
//! easy-to-miss resets: `reduction ← LINEAR` whenever an improvement is
//! observed with `T_p ≠ 0` (lines 17–19), and `T_p ← 0` after every
//! decrease (line 35) so the round that follows a reduction always takes
//! the growth branch — re-probing from the reduced level instead of
//! shrinking further on stale data.

use crate::cubic::{CubicGrowth, CubicKConvention};
use crate::{clamp_level, improved, Controller, Sample};

/// Tuning constants for [`Rubic`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RubicConfig {
    /// Multiplicative decrease factor α (paper evaluation: 0.8).
    pub alpha: f64,
    /// Cubic growth scaling factor β (paper evaluation: 0.1).
    pub beta: f64,
    /// `K`-constant convention for Equation (1); see
    /// [`CubicKConvention`].
    pub convention: CubicKConvention,
    /// Relative throughput tolerance for the `T_c >= T_p` comparison.
    /// `0.0` is the paper-literal comparison; a few percent helps with
    /// noisy in-vivo measurements.
    pub tolerance: f64,
    /// Linear decrease step used on the first round of a loss (Algorithm
    /// 2 line 31 uses 2).
    pub linear_decrease: u32,
}

impl Default for RubicConfig {
    fn default() -> Self {
        RubicConfig {
            alpha: 0.8,
            beta: 0.1,
            convention: CubicKConvention::default(),
            tolerance: 0.0,
            linear_decrease: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Growth {
    Cubic,
    Linear,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reduction {
    Linear,
    Multiplicative,
}

/// The RUBIC parallelism controller (Algorithm 2).
///
/// ```
/// use rubic_controllers::{Controller, Rubic, RubicConfig, Sample};
/// let mut c = Rubic::new(RubicConfig::default(), 128);
/// assert_eq!(c.name(), "RUBIC");
/// // First round: T_p starts at 0, so any throughput is an improvement
/// // and the controller starts its cubic probing phase from level 1.
/// let next = c.decide(Sample { throughput: 100.0, level: 1, round: 0 });
/// assert!(next >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Rubic {
    cfg: RubicConfig,
    max_level: u32,
    cubic: CubicGrowth,
    growth: Growth,
    reduction: Reduction,
    t_p: f64,
}

impl Rubic {
    /// Creates a RUBIC controller for a thread pool of size `max_level`.
    ///
    /// # Panics
    /// Panics if `alpha ∉ (0,1)` or `beta <= 0` (via [`CubicGrowth`]).
    #[must_use]
    pub fn new(cfg: RubicConfig, max_level: u32) -> Self {
        let cubic = CubicGrowth::new(cfg.alpha, cfg.beta, cfg.convention);
        Rubic {
            cfg,
            max_level: max_level.max(1),
            cubic,
            growth: Growth::Cubic,
            reduction: Reduction::Linear,
            t_p: 0.0,
        }
    }

    /// The configuration this controller was built with.
    #[must_use]
    pub fn config(&self) -> &RubicConfig {
        &self.cfg
    }

    /// The last level at which a loss triggered a multiplicative
    /// decrease (`L_max`), exposed for tests and tracing.
    #[must_use]
    pub fn l_max(&self) -> f64 {
        self.cubic.l_max()
    }
}

impl Controller for Rubic {
    fn decide(&mut self, sample: Sample) -> u32 {
        let l_c = sample.level;
        let (proposal, phase) = if improved(sample.throughput, self.t_p, self.cfg.tolerance) {
            // Growth branch (Algorithm 2 lines 6-23).
            let (proposal, phase) = match self.growth {
                Growth::Cubic => {
                    // Lines 8-12: Δt_max += 1, evaluate Equation (1),
                    // take max(L_cubic, L+1), switch to a linear round.
                    let l_cubic = self.cubic.grow();
                    self.growth = Growth::Linear;
                    (
                        l_cubic.max(f64::from(l_c) + 1.0),
                        crate::trc::phase::GROWTH_CUBIC,
                    )
                }
                Growth::Linear => {
                    // Lines 13-15: plain +1, switch back to cubic.
                    self.growth = Growth::Cubic;
                    (f64::from(l_c) + 1.0, crate::trc::phase::GROWTH_LINEAR)
                }
            };
            // Lines 17-19: a genuine improvement (not the free pass after
            // a decrease, where T_p == 0) re-arms the cheap linear
            // reduction.
            if self.t_p != 0.0 {
                self.reduction = Reduction::Linear;
            }
            // Line 23.
            self.t_p = sample.throughput;
            (proposal, phase)
        } else {
            // Reduction branch (lines 24-36).
            let (proposal, phase) = match self.reduction {
                Reduction::Multiplicative => {
                    // Lines 26-29: L_max ← L, L ← αL. (Line 25's
                    // Δt_max ← 0 is folded into multiplicative_decrease.)
                    self.reduction = Reduction::Linear;
                    (
                        self.cubic.multiplicative_decrease(l_c),
                        crate::trc::phase::REDUCE_MULT,
                    )
                }
                Reduction::Linear => {
                    // Lines 30-32: first try a cheap linear step down.
                    self.cubic.reset_clock(); // line 25
                    self.reduction = Reduction::Multiplicative;
                    (
                        f64::from(l_c) - f64::from(self.cfg.linear_decrease),
                        crate::trc::phase::REDUCE_LINEAR,
                    )
                }
            };
            // Line 34: the round after any decrease grows linearly, so
            // the controller compares the reduced level with its +1
            // neighbour before resuming cubic probing.
            self.growth = Growth::Linear;
            // Line 35: forget T_p so the next round unconditionally takes
            // the growth branch from the reduced level.
            self.t_p = 0.0;
            (proposal, phase)
        };
        let next = clamp_level(proposal, self.max_level);
        crate::trc::decision(
            phase,
            sample.throughput,
            l_c,
            next,
            crate::trc::policy::RUBIC,
        );
        crate::trc::rubic_state(phase, self.t_p, self.l_max(), l_c, next);
        next
    }

    fn reset(&mut self) {
        self.cubic.reset();
        self.growth = Growth::Cubic;
        self.reduction = Reduction::Linear;
        self.t_p = 0.0;
    }

    fn max_level(&self) -> u32 {
        self.max_level
    }

    fn name(&self) -> &'static str {
        "RUBIC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(throughput: f64, level: u32, round: u64) -> Sample {
        Sample {
            throughput,
            level,
            round,
        }
    }

    /// Drives the controller against a synthetic concave scalability
    /// curve with a knee at `peak`, returning the level trace.
    fn drive(ctl: &mut Rubic, peak: f64, rounds: usize) -> Vec<u32> {
        let mut level = 1u32;
        let mut trace = Vec::with_capacity(rounds);
        for round in 0..rounds {
            let l = f64::from(level);
            // Monotone rise to the peak, then decline (paper's required
            // curve shape, §4.4).
            let thr = if l <= peak {
                l
            } else {
                peak - 0.5 * (l - peak)
            };
            level = ctl.decide(sample(thr, level, round as u64));
            trace.push(level);
        }
        trace
    }

    #[test]
    fn first_round_takes_growth_branch() {
        let mut c = Rubic::new(RubicConfig::default(), 64);
        let next = c.decide(sample(50.0, 1, 0));
        assert!(next >= 2, "got {next}");
    }

    #[test]
    fn growth_interleaves_cubic_and_linear() {
        let mut c = Rubic::new(RubicConfig::default(), 1024);
        // Feed ever-improving throughput; with L_max = 1 the cubic rounds
        // eventually take big steps while the interleaved linear rounds
        // step exactly +1.
        let mut level = 1u32;
        let mut steps = Vec::new();
        for round in 0..20 {
            let next = c.decide(sample(f64::from(level) * 10.0 + 1.0, level, round));
            steps.push(next as i64 - i64::from(level));
            level = next;
        }
        // Odd rounds (0-indexed: 1, 3, 5, ...) are the linear +1 rounds.
        for (i, &s) in steps.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(
                    s, 1,
                    "round {i} should be a linear +1 round, steps {steps:?}"
                );
            } else {
                assert!(s >= 1, "round {i} cubic step must be >= 1");
            }
        }
        // At least one cubic step must eventually exceed +1 (probing).
        assert!(
            steps.iter().step_by(2).any(|&s| s > 1),
            "no cubic probing observed: {steps:?}"
        );
    }

    #[test]
    fn single_loss_triggers_linear_decrease_first() {
        let mut c = Rubic::new(RubicConfig::default(), 64);
        // Build up some throughput history.
        let l1 = c.decide(sample(100.0, 10, 0));
        // Now a drop: expect a linear -2, not a multiplicative cut.
        let l2 = c.decide(sample(10.0, l1, 1));
        assert_eq!(l2, l1 - 2, "expected linear decrease by 2");
    }

    #[test]
    fn persistent_loss_escalates_to_multiplicative() {
        let cfg = RubicConfig::default();
        let mut c = Rubic::new(cfg, 64);
        c.decide(sample(100.0, 40, 0)); // improvement, T_p = 100
        let l1 = c.decide(sample(50.0, 40, 1)); // loss #1 -> linear -2
        assert_eq!(l1, 38);
        // After a decrease T_p == 0, so the next round is a free-pass
        // growth round (linear +1).
        let l2 = c.decide(sample(49.0, l1, 2));
        assert_eq!(l2, 39);
        // T_p is now 49; a further drop while reduction is still armed
        // MULTIPLICATIVE cuts to α·L.
        let l3 = c.decide(sample(20.0, l2, 3));
        assert_eq!(l3, (0.8f64 * 39.0).round() as u32);
        assert_eq!(c.l_max(), 39.0);
    }

    #[test]
    fn improvement_rearms_linear_reduction() {
        let mut c = Rubic::new(RubicConfig::default(), 64);
        c.decide(sample(100.0, 40, 0)); // T_p = 100
        let l1 = c.decide(sample(50.0, 40, 1)); // loss -> linear -2, reduction now MULT
        let l2 = c.decide(sample(60.0, l1, 2)); // free-pass growth (T_p was 0)
        let l3 = c.decide(sample(70.0, l2, 3)); // genuine improvement -> reduction re-armed LINEAR
        let l4 = c.decide(sample(10.0, l3, 4)); // loss again -> must be linear -2 again
        assert_eq!(l4, l3 - 2, "reduction was not re-armed to linear");
    }

    #[test]
    fn settles_near_the_knee() {
        let mut c = Rubic::new(RubicConfig::default(), 128);
        let trace = drive(&mut c, 64.0, 400);
        let tail = &trace[300..];
        let mean = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        assert!(
            (48.0..=80.0).contains(&mean),
            "steady-state mean level {mean} not near the 64-thread knee"
        );
    }

    #[test]
    fn high_utilization_at_steady_state() {
        // §2.2 claims cubic growth lifts utilisation to ~94% vs AIMD's
        // 75%. Allow a generous band: >= 82%.
        let mut c = Rubic::new(RubicConfig::default(), 128);
        let trace = drive(&mut c, 64.0, 600);
        let tail = &trace[200..];
        let mean = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        let clipped: f64 =
            tail.iter().map(|&l| f64::from(l).min(64.0)).sum::<f64>() / tail.len() as f64;
        assert!(
            clipped / 64.0 >= 0.82,
            "utilisation too low: {:.3} (mean level {mean})",
            clipped / 64.0
        );
    }

    #[test]
    fn never_leaves_bounds() {
        let mut c = Rubic::new(RubicConfig::default(), 32);
        let mut level = 1u32;
        // Adversarial alternating feedback.
        for round in 0..1000 {
            let thr = if round % 3 == 0 { 0.0 } else { 1e9 };
            level = c.decide(sample(thr, level, round));
            assert!((1..=32).contains(&level), "level {level} out of bounds");
        }
    }

    #[test]
    fn never_decreases_below_one_under_constant_loss() {
        let mut c = Rubic::new(RubicConfig::default(), 64);
        c.decide(sample(100.0, 5, 0));
        let mut level = 5u32;
        for round in 1..50u32 {
            // Alternate loss rounds with the forced growth rounds that
            // follow them (T_p reset); feed decreasing throughput so
            // every comparable round is a loss.
            level = c.decide(sample(1.0 / f64::from(round), level, u64::from(round)));
            assert!(level >= 1);
        }
    }

    #[test]
    fn reset_restores_initial_behavior() {
        let mut c = Rubic::new(RubicConfig::default(), 64);
        let fresh: Vec<u32> = {
            let mut c2 = Rubic::new(RubicConfig::default(), 64);
            (0..10)
                .scan(1u32, |lvl, r| {
                    *lvl = c2.decide(sample(f64::from(*lvl), *lvl, r));
                    Some(*lvl)
                })
                .collect()
        };
        // Perturb, then reset.
        for r in 0..25 {
            c.decide(sample(if r % 2 == 0 { 1.0 } else { 100.0 }, 10, r));
        }
        c.reset();
        let after: Vec<u32> = (0..10)
            .scan(1u32, |lvl, r| {
                *lvl = c.decide(sample(f64::from(*lvl), *lvl, r));
                Some(*lvl)
            })
            .collect();
        assert_eq!(fresh, after);
    }

    #[test]
    fn paper_literal_convention_also_converges() {
        let cfg = RubicConfig {
            convention: CubicKConvention::PaperLiteral,
            ..RubicConfig::default()
        };
        let mut c = Rubic::new(cfg, 128);
        let trace = drive(&mut c, 64.0, 600);
        let tail = &trace[400..];
        let mean = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        assert!(
            (40.0..=90.0).contains(&mean),
            "paper-literal K diverged: mean {mean}"
        );
    }

    #[test]
    fn max_level_one_is_stable() {
        let mut c = Rubic::new(RubicConfig::default(), 1);
        for r in 0..20 {
            let l = c.decide(sample(10.0, 1, r));
            assert_eq!(l, 1);
        }
    }
}
