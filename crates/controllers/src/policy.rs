//! Policy selection by name — the construction façade used by the
//! experiment harnesses, the `figures` binary and the examples.

use crate::{
    Aimd, Cimd, Controller, CubicKConvention, DirectedAiad, Ebs, EqualShare, F2c2, Fixed, Greedy,
    Rubic, RubicConfig,
};

/// The allocation policies evaluated in the paper (§4.3), plus the
/// analysis-only AIMD/CIMD models from §2 and a pinned level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// RUBIC (Algorithm 2). The paper's contribution.
    Rubic,
    /// EBS — AIAD hill climbing (Didona et al.).
    Ebs,
    /// F2C2 — exponential start, then AIAD (Ravichandran & Pande).
    F2c2,
    /// AIMD — the SPAA '15 predecessor (analysis model of §2.1).
    Aimd,
    /// Direction-memory AIAD hill climber (ablation variant, not in the
    /// paper's evaluation set).
    DirectedAiad,
    /// Pure CIMD (analysis model of §2.2).
    Cimd,
    /// Greedy — always the whole machine.
    Greedy,
    /// EqualShare — central static `C/N` split.
    EqualShare,
    /// Pinned at a fixed level (scalability sweeps).
    Fixed(u32),
}

impl Policy {
    /// The five policies of the paper's evaluation section, in the order
    /// the figures present them.
    pub const EVALUATED: [Policy; 5] = [
        Policy::Greedy,
        Policy::EqualShare,
        Policy::F2c2,
        Policy::Ebs,
        Policy::Rubic,
    ];

    /// Parses a policy from its figure label (case-insensitive).
    /// `fixed:<n>` selects a pinned level.
    ///
    /// ```
    /// use rubic_controllers::Policy;
    /// assert_eq!(Policy::parse("rubic"), Some(Policy::Rubic));
    /// assert_eq!(Policy::parse("EqualShare"), Some(Policy::EqualShare));
    /// assert_eq!(Policy::parse("fixed:7"), Some(Policy::Fixed(7)));
    /// assert_eq!(Policy::parse("nope"), None);
    /// ```
    #[must_use]
    pub fn parse(s: &str) -> Option<Policy> {
        let lower = s.to_ascii_lowercase();
        Some(match lower.as_str() {
            "rubic" => Policy::Rubic,
            "ebs" => Policy::Ebs,
            "f2c2" => Policy::F2c2,
            "aimd" => Policy::Aimd,
            "directedaiad" | "directed-aiad" => Policy::DirectedAiad,
            "cimd" => Policy::Cimd,
            "greedy" => Policy::Greedy,
            "equalshare" | "equal-share" | "equal_share" => Policy::EqualShare,
            _ => {
                let n = lower.strip_prefix("fixed:")?.parse().ok()?;
                Policy::Fixed(n)
            }
        })
    }

    /// The display name used in the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Rubic => "RUBIC",
            Policy::Ebs => "EBS",
            Policy::F2c2 => "F2C2",
            Policy::Aimd => "AIMD",
            Policy::DirectedAiad => "DirectedAIAD",
            Policy::Cimd => "CIMD",
            Policy::Greedy => "Greedy",
            Policy::EqualShare => "EqualShare",
            Policy::Fixed(_) => "Fixed",
        }
    }
}

/// Everything needed to instantiate any policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Number of hardware contexts on the (possibly simulated) machine.
    pub hw_contexts: u32,
    /// Thread-pool size `S`; adaptive policies may propose levels up to
    /// this (the paper's pools are larger than the machine, which is how
    /// F2C2/EBS end up oversubscribing).
    pub pool_size: u32,
    /// Number of co-located processes (used only by EqualShare's central
    /// split).
    pub n_processes: u32,
    /// RUBIC constants (also used for AIMD's α and CIMD's α/β where
    /// applicable).
    pub rubic: RubicConfig,
    /// α for the analysis-model AIMD/CIMD controllers (§2 uses 0.5).
    pub analysis_alpha: f64,
    /// Relative throughput-comparison tolerance applied to all adaptive
    /// policies.
    pub tolerance: f64,
}

impl PolicyConfig {
    /// The paper's evaluation setup: 64 contexts, pools of 128 threads,
    /// RUBIC α = 0.8 / β = 0.1, exact throughput comparisons.
    #[must_use]
    pub fn paper(n_processes: u32) -> Self {
        PolicyConfig {
            hw_contexts: 64,
            pool_size: 128,
            n_processes: n_processes.max(1),
            rubic: RubicConfig::default(),
            analysis_alpha: 0.5,
            tolerance: 0.0,
        }
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::paper(1)
    }
}

impl Policy {
    /// Instantiates the controller described by `self` under `cfg`.
    #[must_use]
    pub fn build(&self, cfg: &PolicyConfig) -> Box<dyn Controller> {
        let pool = cfg.pool_size.max(1);
        match *self {
            Policy::Rubic => {
                let rc = RubicConfig {
                    tolerance: cfg.tolerance,
                    ..cfg.rubic
                };
                Box::new(Rubic::new(rc, pool))
            }
            Policy::Ebs => Box::new(Ebs::new(pool).with_tolerance(cfg.tolerance)),
            Policy::F2c2 => Box::new(F2c2::new(pool).with_tolerance(cfg.tolerance)),
            Policy::Aimd => {
                Box::new(Aimd::new(cfg.analysis_alpha, pool).with_tolerance(cfg.tolerance))
            }
            Policy::DirectedAiad => {
                Box::new(DirectedAiad::new(1, pool).with_tolerance(cfg.tolerance))
            }
            Policy::Cimd => Box::new(
                Cimd::new(cfg.analysis_alpha, cfg.rubic.beta, pool)
                    .with_convention(CubicKConvention::default())
                    .with_tolerance(cfg.tolerance),
            ),
            Policy::Greedy => Box::new(Greedy::new(cfg.hw_contexts, pool)),
            Policy::EqualShare => Box::new(EqualShare::new(cfg.hw_contexts, cfg.n_processes, pool)),
            Policy::Fixed(n) => Box::new(Fixed::new(n, pool)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;

    #[test]
    fn parse_roundtrip() {
        for p in [
            Policy::Rubic,
            Policy::Ebs,
            Policy::F2c2,
            Policy::Aimd,
            Policy::DirectedAiad,
            Policy::Cimd,
            Policy::Greedy,
            Policy::EqualShare,
        ] {
            assert_eq!(Policy::parse(p.label()), Some(p), "{p:?}");
        }
        assert_eq!(Policy::parse("fixed:12"), Some(Policy::Fixed(12)));
        assert_eq!(Policy::parse("fixed:"), None);
        assert_eq!(Policy::parse("unknown"), None);
    }

    #[test]
    fn build_all_policies() {
        let cfg = PolicyConfig::paper(2);
        for p in
            Policy::EVALUATED
                .iter()
                .copied()
                .chain([Policy::Aimd, Policy::Cimd, Policy::Fixed(7)])
        {
            let mut c = p.build(&cfg);
            let level = c.decide(Sample {
                throughput: 10.0,
                level: 4,
                round: 0,
            });
            assert!((1..=cfg.pool_size).contains(&level), "{p:?} -> {level}");
        }
    }

    #[test]
    fn equal_share_uses_n_processes() {
        let cfg = PolicyConfig::paper(4);
        let mut c = Policy::EqualShare.build(&cfg);
        let l = c.decide(Sample {
            throughput: 1.0,
            level: 1,
            round: 0,
        });
        assert_eq!(l, 16);
    }

    #[test]
    fn evaluated_order_matches_paper() {
        let labels: Vec<&str> = Policy::EVALUATED.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["Greedy", "EqualShare", "F2C2", "EBS", "RUBIC"]);
    }
}
