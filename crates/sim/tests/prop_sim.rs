//! Property-based tests for the simulator: machine-model laws, curve
//! laws, and simulation-loop invariants for arbitrary process sets.

use proptest::prelude::*;
use rubic_controllers::Policy;
use rubic_sim::curves::{self, PeakCurve, UslCurve};
use rubic_sim::{run, Machine, ProcessSpec, SimConfig};

fn any_eval_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Rubic),
        Just(Policy::Ebs),
        Just(Policy::F2c2),
        Just(Policy::Aimd),
        Just(Policy::Cimd),
        Just(Policy::Greedy),
        Just(Policy::EqualShare),
    ]
}

fn any_curve() -> impl Strategy<Value = rubic_sim::Curve> {
    prop_oneof![
        Just(curves::intruder_like()),
        Just(curves::vacation_like()),
        Just(curves::rbt_like()),
        Just(curves::rbt_readonly()),
        (0.0f64..0.3, 0.0001f64..0.05)
            .prop_map(|(s, k)| std::sync::Arc::new(UslCurve::new(s, k)) as rubic_sim::Curve),
        (2.0f64..80.0, 1.5f64..40.0, 0.5f64..1.2, 0.0f64..0.1).prop_map(|(pl, ps, re, d)| {
            std::sync::Arc::new(PeakCurve::new(pl, ps.max(1.0), re, d)) as rubic_sim::Curve
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Machine law: effective speed-up is monotone non-increasing in
    /// total system threads, for any fixed intrinsic speed-up.
    #[test]
    fn effective_speedup_monotone_in_load(
        contexts in 1u32..256,
        delta in 0.0f64..1.0,
        intrinsic in 0.1f64..128.0,
        t1 in 1u32..512,
        t2 in 1u32..512,
    ) {
        let m = Machine::with_contexts(contexts).penalty(delta);
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        prop_assert!(
            m.effective_speedup(intrinsic, lo) >= m.effective_speedup(intrinsic, hi) - 1e-12
        );
    }

    /// Machine law: the oversubscription penalty itself is monotone
    /// non-increasing in total threads, bounded in (0, 1], and exactly
    /// 1 up to (and including) capacity — for any context count and any
    /// penalty slope, including the t = 0 idle edge.
    #[test]
    fn oversubscription_penalty_monotone_and_bounded(
        contexts in 1u32..256,
        delta in 0.0f64..1.0,
        t1 in 0u32..1024,
        t2 in 0u32..1024,
    ) {
        let m = Machine::with_contexts(contexts).penalty(delta);
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let (p_lo, p_hi) = (m.oversubscription_penalty(lo), m.oversubscription_penalty(hi));
        prop_assert!(p_hi <= p_lo + 1e-15, "penalty rose: p({lo})={p_lo} p({hi})={p_hi}");
        for p in [p_lo, p_hi] {
            prop_assert!(p > 0.0 && p <= 1.0);
        }
        prop_assert_eq!(m.oversubscription_penalty(0), 1.0);
        prop_assert_eq!(m.oversubscription_penalty(contexts), 1.0);
    }

    /// Machine law: undersubscribed systems are transparent.
    #[test]
    fn undersubscribed_identity(
        contexts in 1u32..256,
        intrinsic in 0.0f64..128.0,
        frac in 0.0f64..=1.0,
    ) {
        let m = Machine::with_contexts(contexts);
        let t = ((f64::from(contexts) * frac) as u32).max(1).min(contexts);
        prop_assert!((m.effective_speedup(intrinsic, t) - intrinsic).abs() < 1e-12);
    }

    /// Curve law: every provided curve starts at S(1) = 1 and stays
    /// non-negative.
    #[test]
    fn curves_normalised_and_nonnegative(curve in any_curve(), l in 0.0f64..256.0) {
        prop_assert!((curve.speedup(1.0) - 1.0).abs() < 1e-9, "{}", curve.name());
        prop_assert!(curve.speedup(l) >= 0.0);
    }

    /// Simulation invariants for arbitrary 1-3 process systems: trace
    /// lengths match active windows, levels stay within the pool, and
    /// total_threads is the per-round sum of active levels.
    #[test]
    fn simulation_structural_invariants(
        policies in proptest::collection::vec(any_eval_policy(), 1..4),
        curve in any_curve(),
        rounds in 10u64..200,
        arrivals in proptest::collection::vec(0u64..150, 1..4),
        noise in 0.0f64..0.1,
        seed in 0u64..1000,
    ) {
        let n = policies.len().min(arrivals.len());
        let specs: Vec<ProcessSpec> = (0..n)
            .map(|i| {
                ProcessSpec::new(format!("p{i}"), curve.clone(), policies[i])
                    .arrives_at(arrivals[i])
            })
            .collect();
        let mut cfg = SimConfig::paper(n as u32).with_rounds(rounds).with_noise(noise, seed);
        cfg.policy_cfg.pool_size = 128;
        let result = run(&specs, &cfg);

        prop_assert_eq!(result.total_threads.len(), rounds as usize);
        for (spec, proc_result) in specs.iter().zip(&result.processes) {
            let expected = rounds.saturating_sub(spec.arrival_round) as usize;
            prop_assert_eq!(proc_result.trace.len(), expected);
            for p in proc_result.trace.points() {
                prop_assert!(p.level >= 1 && p.level <= 128);
                prop_assert!(p.throughput >= 0.0);
            }
        }
        // Cross-check total_threads against the traces.
        for round in 0..rounds {
            let sum: u32 = result
                .processes
                .iter()
                .flat_map(|p| p.trace.points().iter().filter(|q| q.round == round))
                .map(|q| q.level)
                .sum();
            prop_assert_eq!(sum, result.total_threads[round as usize], "round {}", round);
        }
    }

    /// Determinism: identical configs yield identical results even with
    /// noise.
    #[test]
    fn noisy_runs_are_reproducible(seed in 0u64..10_000, noise in 0.0f64..0.1) {
        let specs = [
            ProcessSpec::new("a", curves::vacation_like(), Policy::Rubic),
            ProcessSpec::new("b", curves::intruder_like(), Policy::Ebs),
        ];
        let cfg = SimConfig::paper(2).with_rounds(100).with_noise(noise, seed);
        let r1 = run(&specs, &cfg);
        let r2 = run(&specs, &cfg);
        prop_assert_eq!(r1.nash_product(), r2.nash_product());
        prop_assert_eq!(&r1.total_threads, &r2.total_threads);
    }

    /// The Nash product equals the product of per-process mean
    /// speed-ups (metric plumbing).
    #[test]
    fn nash_is_product_of_speedups(seed in 0u64..500) {
        let specs = [
            ProcessSpec::new("a", curves::rbt_like(), Policy::Rubic),
            ProcessSpec::new("b", curves::vacation_like(), Policy::Ebs),
        ];
        let cfg = SimConfig::paper(2).with_rounds(150).with_noise(0.02, seed);
        let r = run(&specs, &cfg);
        let manual: f64 = r.processes.iter().map(rubic_sim::ProcessResult::mean_speedup).product();
        prop_assert!((r.nash_product() - manual).abs() < 1e-9);
    }
}
