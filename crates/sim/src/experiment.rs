//! Experiment harness: repeated simulations with noise, aggregated the
//! way the paper's evaluation reports them.
//!
//! §4.4: *"Each experiment lasts for 10 seconds and performance results
//! are the average of 50 repeated experiments to minimize the
//! evaluation noise."* [`Experiment::run`] performs exactly that —
//! `repetitions` seeded runs with multiplicative measurement noise —
//! and aggregates per-process speed-ups/levels and the system metrics
//! (Nash product, total efficiency, total threads) into
//! [`rubic_metrics::Summary`] statistics. The standard deviation of a
//! process's mean allocation across repetitions is Fig. 8b / Fig. 9c's
//! stability metric.

use rubic_controllers::Policy;
use rubic_metrics::Summary;

use crate::curves::Curve;
use crate::sim::{run, ProcessSpec, SimConfig};

/// A workload entry for experiments: name + curve (+ optional arrival).
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Display name ("Intruder", "Vacation", "RBT", ...).
    pub name: String,
    /// Intrinsic scalability curve.
    pub curve: Curve,
    /// Arrival round (0 for co-start).
    pub arrival_round: u64,
}

impl WorkloadSpec {
    /// A workload present from round 0.
    #[must_use]
    pub fn new(name: impl Into<String>, curve: Curve) -> Self {
        WorkloadSpec {
            name: name.into(),
            curve,
            arrival_round: 0,
        }
    }

    /// Sets the arrival round.
    #[must_use]
    pub fn arrives_at(mut self, round: u64) -> Self {
        self.arrival_round = round;
        self
    }
}

/// A repeated experiment: a set of co-located workloads, one policy,
/// `repetitions` noisy runs.
pub struct Experiment {
    /// The co-located workloads.
    pub workloads: Vec<WorkloadSpec>,
    /// The allocation policy applied by every process.
    pub policy: Policy,
    /// Simulation parameters (rounds, machine, controller config).
    pub config: SimConfig,
    /// Number of repetitions (paper: 50).
    pub repetitions: u32,
    /// Measurement-noise amplitude applied in each repetition.
    pub noise: f64,
    /// Base seed; repetition `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl Experiment {
    /// The paper's setup: 1000 rounds, 50 repetitions, 2% noise.
    #[must_use]
    pub fn paper(workloads: Vec<WorkloadSpec>, policy: Policy) -> Self {
        let n = workloads.len() as u32;
        Experiment {
            workloads,
            policy,
            config: SimConfig::paper(n.max(1)),
            repetitions: 50,
            noise: 0.02,
            base_seed: 1000,
        }
    }

    /// Overrides the repetition count (tests use fewer).
    #[must_use]
    pub fn repetitions(mut self, n: u32) -> Self {
        self.repetitions = n.max(1);
        self
    }

    /// Overrides the noise amplitude.
    #[must_use]
    pub fn noise(mut self, amp: f64) -> Self {
        self.noise = amp.max(0.0);
        self
    }

    /// Runs all repetitions and aggregates.
    #[must_use]
    pub fn run(&self) -> ExperimentOutcome {
        let specs: Vec<ProcessSpec> = self
            .workloads
            .iter()
            .map(|w| {
                ProcessSpec::new(w.name.clone(), w.curve.clone(), self.policy)
                    .arrives_at(w.arrival_round)
            })
            .collect();

        let mut per_process: Vec<ProcessStats> = self
            .workloads
            .iter()
            .map(|w| ProcessStats {
                name: w.name.clone(),
                speedup: Summary::new(),
                level: Summary::new(),
                efficiency: Summary::new(),
            })
            .collect();
        let mut nash = Summary::new();
        let mut total_efficiency = Summary::new();
        let mut total_threads = Summary::new();

        for rep in 0..self.repetitions {
            let cfg = self
                .config
                .clone()
                .with_noise(self.noise, self.base_seed + u64::from(rep));
            let result = run(&specs, &cfg);
            for (stats, proc) in per_process.iter_mut().zip(&result.processes) {
                stats.speedup.add(proc.mean_speedup());
                stats.level.add(proc.mean_level());
                stats.efficiency.add(proc.efficiency());
            }
            nash.add(result.nash_product());
            total_efficiency.add(result.total_efficiency());
            total_threads.add(result.mean_total_threads());
        }

        ExperimentOutcome {
            policy: self.policy,
            per_process,
            nash,
            total_efficiency,
            total_threads,
        }
    }
}

/// Cross-repetition statistics for one process.
pub struct ProcessStats {
    /// Process name.
    pub name: String,
    /// Mean speed-up per repetition (Fig. 8a / 9a).
    pub speedup: Summary,
    /// Mean allocated threads per repetition (Fig. 8c / 9b); its
    /// `stddev()` is the allocation-stability metric (Fig. 8b / 9c).
    pub level: Summary,
    /// Efficiency per repetition.
    pub efficiency: Summary,
}

/// Aggregated outcome for one (workload set, policy) experiment.
pub struct ExperimentOutcome {
    /// The policy evaluated.
    pub policy: Policy,
    /// Per-process statistics.
    pub per_process: Vec<ProcessStats>,
    /// System Nash product across repetitions (Fig. 7a).
    pub nash: Summary,
    /// System total efficiency across repetitions (Fig. 7c).
    pub total_efficiency: Summary,
    /// Mean total software threads across repetitions (Fig. 7b).
    pub total_threads: Summary,
}

/// Runs the paper's three pairwise experiments (§4.4: Int/Vac, Int/RBT,
/// Vac/RBT) for one policy, with `repetitions` noisy runs each.
#[must_use]
pub fn pairwise_experiments(policy: Policy, repetitions: u32) -> Vec<(String, ExperimentOutcome)> {
    use crate::curves::{intruder_like, rbt_like, vacation_like};
    let pairs: [(&str, Curve, &str, Curve); 3] = [
        ("Int/Vac", intruder_like(), "Vacation", vacation_like()),
        ("Int/RBT", intruder_like(), "RBT", rbt_like()),
        ("Vac/RBT", vacation_like(), "RBT", rbt_like()),
    ];
    let first_names = ["Intruder", "Intruder", "Vacation"];
    pairs
        .into_iter()
        .zip(first_names)
        .map(|((label, c1, name2, c2), name1)| {
            let outcome = Experiment::paper(
                vec![WorkloadSpec::new(name1, c1), WorkloadSpec::new(name2, c2)],
                policy,
            )
            .repetitions(repetitions)
            .run();
            (label.to_string(), outcome)
        })
        .collect()
}

/// Runs the single-process experiments (§4.5.2) for one policy.
#[must_use]
pub fn single_process_experiments(
    policy: Policy,
    repetitions: u32,
) -> Vec<(String, ExperimentOutcome)> {
    use crate::curves::{intruder_like, rbt_like, vacation_like};
    [
        ("Intruder", intruder_like()),
        ("Vacation", vacation_like()),
        ("RBT", rbt_like()),
    ]
    .into_iter()
    .map(|(name, curve)| {
        let outcome = Experiment::paper(vec![WorkloadSpec::new(name, curve)], policy)
            .repetitions(repetitions)
            .run();
        (name.to_string(), outcome)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves;

    #[test]
    fn outcome_shapes() {
        let out = Experiment::paper(
            vec![
                WorkloadSpec::new("A", curves::vacation_like()),
                WorkloadSpec::new("B", curves::rbt_like()),
            ],
            Policy::Rubic,
        )
        .repetitions(3)
        .run();
        assert_eq!(out.per_process.len(), 2);
        assert_eq!(out.nash.count(), 3);
        assert!(out.nash.mean() > 0.0);
        assert!(out.total_threads.mean() > 0.0);
    }

    #[test]
    fn repetitions_differ_under_noise() {
        let out = Experiment::paper(
            vec![WorkloadSpec::new("A", curves::rbt_like())],
            Policy::Ebs,
        )
        .repetitions(5)
        .noise(0.05)
        .run();
        assert!(
            out.per_process[0].level.stddev() > 0.0,
            "noise should produce cross-repetition variance"
        );
    }

    #[test]
    fn zero_noise_zero_variance() {
        let out = Experiment::paper(
            vec![WorkloadSpec::new("A", curves::rbt_like())],
            Policy::Rubic,
        )
        .repetitions(4)
        .noise(0.0)
        .run();
        assert_eq!(out.per_process[0].level.stddev(), 0.0);
        assert_eq!(out.nash.stddev(), 0.0);
    }

    #[test]
    fn pairwise_set_is_three_pairs() {
        let outs = pairwise_experiments(Policy::Rubic, 2);
        assert_eq!(outs.len(), 3);
        let labels: Vec<&str> = outs.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["Int/Vac", "Int/RBT", "Vac/RBT"]);
        for (_, o) in &outs {
            assert_eq!(o.per_process.len(), 2);
        }
    }

    #[test]
    fn single_process_set_is_three_workloads() {
        let outs = single_process_experiments(Policy::Ebs, 2);
        assert_eq!(outs.len(), 3);
        for (_, o) in &outs {
            assert_eq!(o.per_process.len(), 1);
        }
    }

    #[test]
    fn rubic_beats_greedy_on_pairwise_nash() {
        // The paper's headline ordering, at reduced repetition count.
        let rubic = pairwise_experiments(Policy::Rubic, 3);
        let greedy = pairwise_experiments(Policy::Greedy, 3);
        for ((label, r), (_, g)) in rubic.iter().zip(&greedy) {
            assert!(
                r.nash.mean() > g.nash.mean(),
                "{label}: RUBIC {} vs Greedy {}",
                r.nash.mean(),
                g.nash.mean()
            );
        }
    }
}
