//! Deterministic multi-process machine simulator for parallelism-tuning
//! experiments.
//!
//! **Why a simulator?** The paper's evaluation runs on a 4-socket,
//! 64-context AMD machine with multiple co-located OS processes —
//! hardware this reproduction does not have (the build host exposes a
//! single CPU). The paper itself licenses the substitution (§4.4):
//!
//! > "the choice of the host machine, underlying parallelism runtime
//! > and the benchmark does not affect the conclusions we draw […] our
//! > techniques only depend on the scalability curve defined by each
//! > running process."
//!
//! This crate therefore models exactly those ingredients and nothing
//! more:
//!
//! * [`curves`] — per-workload intrinsic scalability curves, with
//!   presets fitted to the paper's Fig. 1/Fig. 6 shapes;
//! * [`machine`] — hardware contexts, fair time slicing, and the
//!   oversubscription penalty (context switches, cache thrashing,
//!   inflated TM conflict windows);
//! * [`sim`] — the round-based simulation loop: every 10 ms-round each
//!   process feeds its own observed throughput to its own controller
//!   (unchanged `rubic-controllers` code), fully decentralised;
//! * [`experiment`] — the paper's repetition protocol (10 s runs × 50
//!   seeded noisy repetitions) and the pairwise/single-process
//!   experiment sets.
//!
//! # Example: the §4.6 convergence experiment
//!
//! ```
//! use rubic_controllers::Policy;
//! use rubic_sim::{curves, ProcessSpec, SimConfig};
//!
//! // Two identical conflict-free processes; P2 arrives at t = 5 s.
//! let specs = [
//!     ProcessSpec::new("P1", curves::rbt_readonly(), Policy::Rubic),
//!     ProcessSpec::new("P2", curves::rbt_readonly(), Policy::Rubic).arrives_at(500),
//! ];
//! let result = rubic_sim::run(&specs, &SimConfig::paper(2));
//! // After P2's arrival both should hover near the fair 32/32 split.
//! let p1_late = result.processes[0].trace.mean_level_in(800, 1000);
//! assert!((24.0..=40.0).contains(&p1_late), "P1 settled at {p1_late}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod curves;
pub mod experiment;
pub mod machine;
pub mod sim;

pub use curves::{Curve, ScalabilityCurve};
pub use experiment::{
    pairwise_experiments, single_process_experiments, Experiment, ExperimentOutcome, ProcessStats,
    WorkloadSpec,
};
pub use machine::Machine;
pub use sim::{run, ProcessResult, ProcessSpec, SimConfig, SimResult};
