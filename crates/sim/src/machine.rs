//! The machine model: hardware contexts, time slicing, and the
//! oversubscription penalty.
//!
//! **Hardware-gate substitution (DESIGN.md §1).** The paper's testbed is
//! a 4-socket, 64-context AMD Opteron 6272 machine running co-located
//! multi-threaded OS processes. This model replaces it:
//!
//! * With total runnable software threads `T ≤ C` (contexts), every
//!   thread gets a dedicated context and each process performs exactly
//!   as its intrinsic scalability curve predicts.
//! * With `T > C` (oversubscription), the OS time-slices fairly: each
//!   thread effectively runs at `C/T` speed, scaling every process's
//!   throughput by that share. On top, a penalty
//!   `1 / (1 + δ·(T/C − 1))` models the costs the paper names in §1:
//!   context-switch overhead, cache thrashing, and — TM-specific —
//!   prolonged transaction windows that inflate conflict/abort rates
//!   (Maldonado et al.). `δ` defaults to 0.02 — deliberately gentle:
//!   the dominant oversubscription cost is the time-slice share itself,
//!   and a near-flat per-process plateau just past `C` is what lets the
//!   paper's F2C2/EBS plateau pathologies (§4.6) emerge once
//!   measurement noise is added. The `ablations` bench sweeps δ.
//!
//! The model is intentionally minimal: it preserves exactly the two
//! properties the paper's analysis depends on — single-process
//! behaviour is the scalability curve itself, and crossing the
//! oversubscription line hurts *everyone* — without pretending to
//! predict absolute hardware numbers.
//!
//! **Topology extension (DESIGN.md §17).** The testbed is not flat: it
//! is 4 sockets × 16 contexts, and Pasqualin et al.'s survey (PAPERS.md)
//! shows thread placement across sockets rivals the concurrency level
//! as a performance lever. [`Machine::locality_factor`] folds placement
//! in as a third multiplicative term next to the time-slice share and
//! the oversubscription penalty:
//!
//! * Spreading a *communicating* process across sockets routes its
//!   transactional metadata through the interconnect instead of one
//!   LLC: `1 / (1 + γ · comm · spread)`, where `spread` is the fraction
//!   of threads off the most-populated socket and `comm ∈ [0, 1]` the
//!   process's communication intensity.
//! * Spreading a *pinned, non-communicating* process buys it the
//!   aggregate memory bandwidth of every socket it touches:
//!   `1 + σ · (1 − comm) · spread`. Unpinned (placement-blind)
//!   processes migrate too often to keep any socket's caches warm and
//!   forfeit the bonus.
//!
//! With `comm = 0` and no pinning both terms are 1 and the flat model
//! is reproduced exactly — single-socket machines and legacy callers
//! (`effective_speedup`) are numerically unchanged.

use rubic_controllers::{Placement, Topology};

/// The simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Hardware contexts (the paper's machine: 64).
    pub contexts: u32,
    /// Oversubscription penalty slope δ.
    pub penalty_delta: f64,
    /// Sockets the contexts are split across (the paper's machine: 4).
    /// Should divide `contexts`; per-socket capacity is
    /// `contexts / sockets`.
    pub sockets: u32,
    /// Cross-socket communication penalty slope γ: how hard spreading
    /// hurts a fully communicating (`comm = 1`) process.
    pub xsocket_gamma: f64,
    /// Aggregate-bandwidth bonus slope σ: how much spreading helps a
    /// pinned, non-communicating process.
    pub bandwidth_sigma: f64,
}

impl Machine {
    /// The paper's machine — 4 sockets × 16 contexts — with the default
    /// penalty and locality slopes.
    #[must_use]
    pub fn paper() -> Self {
        Machine {
            contexts: 64,
            penalty_delta: 0.02,
            sockets: 4,
            xsocket_gamma: 0.8,
            bandwidth_sigma: 0.08,
        }
    }

    /// A flat (single-socket) machine with `contexts` contexts and the
    /// default penalty.
    #[must_use]
    pub fn with_contexts(contexts: u32) -> Self {
        Machine {
            contexts: contexts.max(1),
            sockets: 1,
            ..Machine::paper()
        }
    }

    /// Sets the penalty slope δ (ablations).
    #[must_use]
    pub fn penalty(mut self, delta: f64) -> Self {
        self.penalty_delta = delta.max(0.0);
        self
    }

    /// Sets the socket count (clamped to `[1, contexts]`; should divide
    /// `contexts`).
    #[must_use]
    pub fn with_sockets(mut self, sockets: u32) -> Self {
        self.sockets = sockets.clamp(1, self.contexts);
        self
    }

    /// Sets the locality slopes (γ: cross-socket communication penalty,
    /// σ: aggregate-bandwidth bonus).
    #[must_use]
    pub fn locality(mut self, gamma: f64, sigma: f64) -> Self {
        self.xsocket_gamma = gamma.max(0.0);
        self.bandwidth_sigma = sigma.max(0.0);
        self
    }

    /// The socket layout mapping policies place onto.
    #[must_use]
    pub fn topology(&self) -> Topology {
        Topology {
            sockets: self.sockets,
            contexts_per_socket: (self.contexts / self.sockets).max(1),
        }
    }

    /// The fraction of full speed each software thread gets when
    /// `total_threads` are runnable: `min(1, C/T)`.
    #[must_use]
    pub fn time_slice_share(&self, total_threads: u32) -> f64 {
        if total_threads <= self.contexts {
            1.0
        } else {
            f64::from(self.contexts) / f64::from(total_threads)
        }
    }

    /// The multiplicative oversubscription penalty at `total_threads`.
    #[must_use]
    pub fn oversubscription_penalty(&self, total_threads: u32) -> f64 {
        if total_threads <= self.contexts {
            1.0
        } else {
            let ratio = f64::from(total_threads) / f64::from(self.contexts);
            1.0 / (1.0 + self.penalty_delta * (ratio - 1.0))
        }
    }

    /// A process's effective speed-up when it would intrinsically reach
    /// `intrinsic_speedup` with its threads and the whole system runs
    /// `total_threads` software threads.
    #[must_use]
    pub fn effective_speedup(&self, intrinsic_speedup: f64, total_threads: u32) -> f64 {
        intrinsic_speedup
            * self.time_slice_share(total_threads)
            * self.oversubscription_penalty(total_threads)
    }

    /// True when the system is oversubscribed at `total_threads`.
    #[must_use]
    pub fn oversubscribed(&self, total_threads: u32) -> bool {
        total_threads > self.contexts
    }

    /// The placement-dependent multiplicative factor (see the module
    /// docs): cross-socket communication penalty × aggregate-bandwidth
    /// bonus. Exactly `1.0` on a single-socket machine, for an empty
    /// placement, or for a placement packed onto one socket.
    #[must_use]
    pub fn locality_factor(&self, placement: &Placement, comm_intensity: f64) -> f64 {
        if self.sockets <= 1 {
            return 1.0;
        }
        let spread = placement.spread_fraction();
        if spread <= 0.0 {
            return 1.0;
        }
        let comm = comm_intensity.clamp(0.0, 1.0);
        let penalty = 1.0 / (1.0 + self.xsocket_gamma * comm * spread);
        let bonus = if placement.stable {
            1.0 + self.bandwidth_sigma * (1.0 - comm) * spread
        } else {
            1.0
        };
        penalty * bonus
    }

    /// [`effective_speedup`](Machine::effective_speedup) with the
    /// process's thread placement folded in.
    #[must_use]
    pub fn effective_speedup_placed(
        &self,
        intrinsic_speedup: f64,
        total_threads: u32,
        placement: &Placement,
        comm_intensity: f64,
    ) -> f64 {
        self.effective_speedup(intrinsic_speedup, total_threads)
            * self.locality_factor(placement, comm_intensity)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undersubscribed_is_transparent() {
        let m = Machine::paper();
        for t in [1, 32, 64] {
            assert_eq!(m.time_slice_share(t), 1.0);
            assert_eq!(m.oversubscription_penalty(t), 1.0);
            assert_eq!(m.effective_speedup(10.0, t), 10.0);
            assert!(!m.oversubscribed(t) || t > 64);
        }
    }

    #[test]
    fn oversubscription_hurts_monotonically() {
        let m = Machine::paper();
        let mut prev = f64::INFINITY;
        for t in [65, 70, 96, 128, 256] {
            let eff = m.effective_speedup(64.0, t);
            assert!(eff < prev, "t={t}");
            prev = eff;
            assert!(m.oversubscribed(t));
        }
    }

    #[test]
    fn crossing_the_line_causes_a_detectable_drop() {
        // The controller relies on seeing a throughput decrease right
        // past C. With a linear (perfectly scalable) workload:
        let m = Machine::paper();
        let at_64 = m.effective_speedup(64.0, 64);
        let at_65 = m.effective_speedup(65.0, 65);
        assert!(
            at_65 < at_64,
            "no loss when crossing the line: {at_64} -> {at_65}"
        );
    }

    #[test]
    fn share_math() {
        let m = Machine::with_contexts(64);
        assert!((m.time_slice_share(128) - 0.5).abs() < 1e-12);
        assert!((m.time_slice_share(96) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn penalty_slope_zero_is_pure_time_slicing() {
        let m = Machine::with_contexts(64).penalty(0.0);
        assert_eq!(m.oversubscription_penalty(128), 1.0);
        assert!((m.effective_speedup(64.0, 128) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn zero_threads_is_an_idle_machine() {
        // `total_threads == 0` (no process active this round) must be
        // transparent, not a division hazard.
        let m = Machine::paper();
        assert_eq!(m.time_slice_share(0), 1.0);
        assert_eq!(m.oversubscription_penalty(0), 1.0);
        assert_eq!(m.effective_speedup(0.0, 0), 0.0);
        assert!(!m.oversubscribed(0));
    }

    #[test]
    fn exactly_at_capacity_is_transparent() {
        // T == C sits on the boundary: still undersubscribed, share and
        // penalty both exactly 1, and one more thread flips both.
        for c in [1, 2, 16, 64, 256] {
            let m = Machine::with_contexts(c);
            assert_eq!(m.time_slice_share(c), 1.0, "C={c}");
            assert_eq!(m.oversubscription_penalty(c), 1.0, "C={c}");
            assert!(!m.oversubscribed(c));
            assert!(m.time_slice_share(c + 1) < 1.0, "C={c}");
            assert!(m.oversubscription_penalty(c + 1) < 1.0, "C={c}");
            assert!(m.oversubscribed(c + 1));
        }
    }

    #[test]
    fn far_past_capacity_degrades_but_stays_positive() {
        // Extreme oversubscription (4096 threads on 64 contexts): the
        // share goes to C/T, the penalty stays in (0, 1], and the
        // product never hits zero or goes negative.
        let m = Machine::paper();
        let t = 4096;
        assert!((m.time_slice_share(t) - 64.0 / 4096.0).abs() < 1e-12);
        let p = m.oversubscription_penalty(t);
        assert!(p > 0.0 && p < 1.0, "penalty {p}");
        let expected = 1.0 / (1.0 + 0.02 * (4096.0 / 64.0 - 1.0));
        assert!((p - expected).abs() < 1e-12);
        let eff = m.effective_speedup(64.0, t);
        assert!(eff > 0.0 && eff < 1.5, "eff {eff}");
    }

    #[test]
    fn penalty_monotone_over_dense_range() {
        // Dense-sweep companion to the proptest in tests/prop_sim.rs:
        // the penalty is non-increasing in T across the boundary and
        // strictly decreasing past it (for δ > 0).
        let m = Machine::paper();
        let mut prev = m.oversubscription_penalty(0);
        for t in 1..=512u32 {
            let p = m.oversubscription_penalty(t);
            assert!(p <= prev + 1e-15, "t={t}: {p} > {prev}");
            if t > 64 {
                assert!(p < prev, "t={t}: not strictly decreasing past C");
            }
            prev = p;
        }
    }

    #[test]
    fn two_greedy_processes_lose_big() {
        // The Fig. 7 Greedy pathology: two processes at 64 threads each
        // (T = 128) on intruder-like workloads each get hammered by both
        // slicing and penalty.
        let m = Machine::paper();
        let alone = m.effective_speedup(3.5, 64);
        let contended = m.effective_speedup(3.5, 128);
        // Time slicing alone halves it; the penalty shaves a bit more.
        assert!(contended < alone * 0.50);
    }

    #[test]
    fn paper_machine_is_4x16() {
        let t = Machine::paper().topology();
        assert_eq!((t.sockets, t.contexts_per_socket), (4, 16));
        assert_eq!(t.total_contexts(), 64);
        let flat = Machine::with_contexts(64).topology();
        assert_eq!((flat.sockets, flat.contexts_per_socket), (1, 64));
    }

    #[test]
    fn locality_factor_is_identity_when_it_should_be() {
        let m = Machine::paper();
        let topo = m.topology();
        // Packed placement: no spread, no effect, any comm intensity.
        for comm in [0.0, 0.5, 1.0] {
            assert_eq!(m.locality_factor(&Placement::compact(16, &topo), comm), 1.0);
        }
        // Single-socket machine: placement cannot matter.
        let flat = Machine::with_contexts(64);
        let spread = Placement::scatter(32, &flat.topology());
        assert_eq!(flat.locality_factor(&spread, 1.0), 1.0);
        // Empty placement: defined, transparent.
        assert_eq!(m.locality_factor(&Placement::scatter(0, &topo), 1.0), 1.0);
        // Unpinned + zero comm: no penalty, no bonus.
        assert_eq!(m.locality_factor(&Placement::blind(32, &topo), 0.0), 1.0);
    }

    #[test]
    fn spreading_a_communicating_process_hurts() {
        let m = Machine::paper();
        let topo = m.topology();
        let packed = Placement::compact(16, &topo);
        let spread = Placement::scatter(16, &topo);
        let f_packed = m.effective_speedup_placed(8.0, 16, &packed, 0.9);
        let f_spread = m.effective_speedup_placed(8.0, 16, &spread, 0.9);
        assert!(
            f_spread < f_packed * 0.75,
            "spreading comm=0.9 should cost >25%: {f_spread} vs {f_packed}"
        );
        // And the penalty grows with comm intensity.
        assert!(
            m.locality_factor(&spread, 0.9) < m.locality_factor(&spread, 0.3),
            "penalty must grow with comm intensity"
        );
    }

    #[test]
    fn spreading_a_pinned_streaming_process_helps() {
        let m = Machine::paper();
        let topo = m.topology();
        let spread = Placement::scatter(32, &topo);
        let blind = Placement::blind(32, &topo);
        // comm = 0: pinned spread earns the bandwidth bonus, the
        // unpinned OS-default spread does not.
        assert!(m.locality_factor(&spread, 0.0) > 1.0);
        assert_eq!(m.locality_factor(&blind, 0.0), 1.0);
    }
}
