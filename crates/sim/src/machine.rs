//! The machine model: hardware contexts, time slicing, and the
//! oversubscription penalty.
//!
//! **Hardware-gate substitution (DESIGN.md §1).** The paper's testbed is
//! a 4-socket, 64-context AMD Opteron 6272 machine running co-located
//! multi-threaded OS processes. This model replaces it:
//!
//! * With total runnable software threads `T ≤ C` (contexts), every
//!   thread gets a dedicated context and each process performs exactly
//!   as its intrinsic scalability curve predicts.
//! * With `T > C` (oversubscription), the OS time-slices fairly: each
//!   thread effectively runs at `C/T` speed, scaling every process's
//!   throughput by that share. On top, a penalty
//!   `1 / (1 + δ·(T/C − 1))` models the costs the paper names in §1:
//!   context-switch overhead, cache thrashing, and — TM-specific —
//!   prolonged transaction windows that inflate conflict/abort rates
//!   (Maldonado et al.). `δ` defaults to 0.02 — deliberately gentle:
//!   the dominant oversubscription cost is the time-slice share itself,
//!   and a near-flat per-process plateau just past `C` is what lets the
//!   paper's F2C2/EBS plateau pathologies (§4.6) emerge once
//!   measurement noise is added. The `ablations` bench sweeps δ.
//!
//! The model is intentionally minimal: it preserves exactly the two
//! properties the paper's analysis depends on — single-process
//! behaviour is the scalability curve itself, and crossing the
//! oversubscription line hurts *everyone* — without pretending to
//! predict absolute hardware numbers.

/// The simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Hardware contexts (the paper's machine: 64).
    pub contexts: u32,
    /// Oversubscription penalty slope δ.
    pub penalty_delta: f64,
}

impl Machine {
    /// The paper's 64-context machine with the default penalty slope.
    #[must_use]
    pub fn paper() -> Self {
        Machine {
            contexts: 64,
            penalty_delta: 0.02,
        }
    }

    /// A machine with `contexts` contexts and the default penalty.
    #[must_use]
    pub fn with_contexts(contexts: u32) -> Self {
        Machine {
            contexts: contexts.max(1),
            penalty_delta: 0.02,
        }
    }

    /// Sets the penalty slope δ (ablations).
    #[must_use]
    pub fn penalty(mut self, delta: f64) -> Self {
        self.penalty_delta = delta.max(0.0);
        self
    }

    /// The fraction of full speed each software thread gets when
    /// `total_threads` are runnable: `min(1, C/T)`.
    #[must_use]
    pub fn time_slice_share(&self, total_threads: u32) -> f64 {
        if total_threads <= self.contexts {
            1.0
        } else {
            f64::from(self.contexts) / f64::from(total_threads)
        }
    }

    /// The multiplicative oversubscription penalty at `total_threads`.
    #[must_use]
    pub fn oversubscription_penalty(&self, total_threads: u32) -> f64 {
        if total_threads <= self.contexts {
            1.0
        } else {
            let ratio = f64::from(total_threads) / f64::from(self.contexts);
            1.0 / (1.0 + self.penalty_delta * (ratio - 1.0))
        }
    }

    /// A process's effective speed-up when it would intrinsically reach
    /// `intrinsic_speedup` with its threads and the whole system runs
    /// `total_threads` software threads.
    #[must_use]
    pub fn effective_speedup(&self, intrinsic_speedup: f64, total_threads: u32) -> f64 {
        intrinsic_speedup
            * self.time_slice_share(total_threads)
            * self.oversubscription_penalty(total_threads)
    }

    /// True when the system is oversubscribed at `total_threads`.
    #[must_use]
    pub fn oversubscribed(&self, total_threads: u32) -> bool {
        total_threads > self.contexts
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undersubscribed_is_transparent() {
        let m = Machine::paper();
        for t in [1, 32, 64] {
            assert_eq!(m.time_slice_share(t), 1.0);
            assert_eq!(m.oversubscription_penalty(t), 1.0);
            assert_eq!(m.effective_speedup(10.0, t), 10.0);
            assert!(!m.oversubscribed(t) || t > 64);
        }
    }

    #[test]
    fn oversubscription_hurts_monotonically() {
        let m = Machine::paper();
        let mut prev = f64::INFINITY;
        for t in [65, 70, 96, 128, 256] {
            let eff = m.effective_speedup(64.0, t);
            assert!(eff < prev, "t={t}");
            prev = eff;
            assert!(m.oversubscribed(t));
        }
    }

    #[test]
    fn crossing_the_line_causes_a_detectable_drop() {
        // The controller relies on seeing a throughput decrease right
        // past C. With a linear (perfectly scalable) workload:
        let m = Machine::paper();
        let at_64 = m.effective_speedup(64.0, 64);
        let at_65 = m.effective_speedup(65.0, 65);
        assert!(
            at_65 < at_64,
            "no loss when crossing the line: {at_64} -> {at_65}"
        );
    }

    #[test]
    fn share_math() {
        let m = Machine::with_contexts(64);
        assert!((m.time_slice_share(128) - 0.5).abs() < 1e-12);
        assert!((m.time_slice_share(96) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn penalty_slope_zero_is_pure_time_slicing() {
        let m = Machine::with_contexts(64).penalty(0.0);
        assert_eq!(m.oversubscription_penalty(128), 1.0);
        assert!((m.effective_speedup(64.0, 128) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn two_greedy_processes_lose_big() {
        // The Fig. 7 Greedy pathology: two processes at 64 threads each
        // (T = 128) on intruder-like workloads each get hammered by both
        // slicing and penalty.
        let m = Machine::paper();
        let alone = m.effective_speedup(3.5, 64);
        let contended = m.effective_speedup(3.5, 128);
        // Time slicing alone halves it; the penalty shaves a bit more.
        assert!(contended < alone * 0.50);
    }
}
