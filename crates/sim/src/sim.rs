//! The multi-process simulation loop.
//!
//! One simulated round = one monitoring period (the paper's 10 ms).
//! Each round, every *active* process observes the throughput implied by
//! its scalability curve, the machine state (total runnable threads
//! across all processes) and optional measurement noise, then feeds that
//! observation to **its own controller** — decisions stay unilateral and
//! decentralised, exactly as in the paper. Processes arrive and depart
//! at configured rounds (the §4.6 convergence experiment has P2 arrive
//! 5 s into P1's run).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rubic_controllers::{Controller, Mapper, MappingPolicy, Policy, PolicyConfig, Sample};
use rubic_metrics::LevelTrace;

use crate::curves::Curve;
use crate::machine::Machine;

/// Specification of one simulated process.
#[derive(Clone)]
pub struct ProcessSpec {
    /// Display name (e.g. "Intruder").
    pub name: String,
    /// Intrinsic scalability curve.
    pub curve: Curve,
    /// Allocation policy driving this process's level.
    pub policy: Policy,
    /// Round at which the process starts (0 = from the beginning).
    pub arrival_round: u64,
    /// Round at which the process leaves, if any.
    pub departure_round: Option<u64>,
    /// Sequential throughput `T_seq(ω)` in tasks/second — converts
    /// speed-ups into absolute commit rates (the controllers only care
    /// about relative changes, but the traces report real rates).
    pub seq_throughput: f64,
    /// Parallelism level on arrival (paper: 1; the Fig. 2 trajectory
    /// analysis starts processes from arbitrary unequal points).
    pub initial_level: u32,
    /// Thread-to-socket mapping policy (the *where* axis; default
    /// [`MappingPolicy::Blind`] — no affinity, the pre-topology
    /// behaviour).
    pub mapping: MappingPolicy,
    /// Communication intensity in `[0, 1]`: how much of the process's
    /// work is cross-thread traffic through shared transactional state
    /// (Intruder's queue + session map ≈ 0.9; rbt read-only ≈ 0.0).
    /// Feeds [`Machine::locality_factor`]; `0.0` (the default) makes
    /// placement transparent, reproducing the flat model exactly.
    pub comm_intensity: f64,
}

impl ProcessSpec {
    /// A process present for the whole run.
    #[must_use]
    pub fn new(name: impl Into<String>, curve: Curve, policy: Policy) -> Self {
        ProcessSpec {
            name: name.into(),
            curve,
            policy,
            arrival_round: 0,
            departure_round: None,
            seq_throughput: 10_000.0,
            initial_level: 1,
            mapping: MappingPolicy::Blind,
            comm_intensity: 0.0,
        }
    }

    /// Sets the thread-to-socket mapping policy.
    #[must_use]
    pub fn mapping(mut self, mapping: MappingPolicy) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the communication intensity (clamped to `[0, 1]`).
    #[must_use]
    pub fn comm_intensity(mut self, comm: f64) -> Self {
        self.comm_intensity = comm.clamp(0.0, 1.0);
        self
    }

    /// Sets the level the process starts at.
    #[must_use]
    pub fn starts_at_level(mut self, level: u32) -> Self {
        self.initial_level = level.max(1);
        self
    }

    /// Sets the arrival round.
    #[must_use]
    pub fn arrives_at(mut self, round: u64) -> Self {
        self.arrival_round = round;
        self
    }

    /// Sets the departure round.
    #[must_use]
    pub fn departs_at(mut self, round: u64) -> Self {
        self.departure_round = Some(round);
        self
    }

    /// Sets the sequential throughput.
    #[must_use]
    pub fn seq_throughput(mut self, t: f64) -> Self {
        self.seq_throughput = t;
        self
    }

    fn active(&self, round: u64) -> bool {
        round >= self.arrival_round && self.departure_round.is_none_or(|d| round < d)
    }
}

/// Simulation parameters.
#[derive(Clone)]
pub struct SimConfig {
    /// The machine model.
    pub machine: Machine,
    /// Controller construction parameters (pool size, EqualShare split,
    /// RUBIC constants, tolerance).
    pub policy_cfg: PolicyConfig,
    /// Number of rounds (paper experiments: 10 s / 10 ms = 1000).
    pub rounds: u64,
    /// Relative amplitude of multiplicative uniform measurement noise
    /// (0 = deterministic; the repetition experiments use a few
    /// percent).
    pub noise: f64,
    /// RNG seed for the noise stream.
    pub seed: u64,
    /// Machine reconfigurations applied mid-run: at each `(round,
    /// machine)` the hardware changes (contexts hot-plugged or removed,
    /// penalty slope adjusted). Models the paper's §3.3 "dynamic changes
    /// in … available hardware resources". Must be sorted by round.
    pub machine_changes: Vec<(u64, Machine)>,
}

impl SimConfig {
    /// The paper's setup for `n_processes` co-located processes:
    /// 64 contexts, pools of 128 threads, 1000 rounds, deterministic.
    #[must_use]
    pub fn paper(n_processes: u32) -> Self {
        SimConfig {
            machine: Machine::paper(),
            policy_cfg: PolicyConfig::paper(n_processes),
            rounds: 1000,
            noise: 0.0,
            seed: 42,
            machine_changes: Vec::new(),
        }
    }

    /// Sets the noise amplitude.
    #[must_use]
    pub fn with_noise(mut self, noise: f64, seed: u64) -> Self {
        self.noise = noise;
        self.seed = seed;
        self
    }

    /// Sets the number of rounds.
    #[must_use]
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Schedules a machine reconfiguration at `round`.
    #[must_use]
    pub fn machine_change_at(mut self, round: u64, machine: Machine) -> Self {
        self.machine_changes.push((round, machine));
        self.machine_changes.sort_by_key(|&(r, _)| r);
        self
    }
}

/// Per-process outcome of a simulation run.
pub struct ProcessResult {
    /// Process name.
    pub name: String,
    /// Policy label.
    pub policy: &'static str,
    /// Mapping-policy label.
    pub mapping: &'static str,
    /// `(round, level, throughput)` for every round the process was
    /// active.
    pub trace: LevelTrace,
    /// Sequential throughput used for speed-up computation.
    pub seq_throughput: f64,
    /// Mean placement spread fraction over the active window (0 =
    /// always packed on one socket, →0.75 = evenly spread over 4).
    pub mean_spread: f64,
}

impl ProcessResult {
    /// Mean speed-up over the process's active window.
    #[must_use]
    pub fn mean_speedup(&self) -> f64 {
        rubic_metrics::speedup(self.trace.mean_throughput(), self.seq_throughput)
    }

    /// Mean parallelism level over the active window.
    #[must_use]
    pub fn mean_level(&self) -> f64 {
        self.trace.mean_level()
    }

    /// Efficiency `E = S / L` from the window means.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        rubic_metrics::efficiency(self.mean_speedup(), self.mean_level())
    }
}

/// Outcome of a full simulation run.
pub struct SimResult {
    /// Per-process results, in spec order.
    pub processes: Vec<ProcessResult>,
    /// Total active software threads per round (system view, Fig. 7b).
    pub total_threads: Vec<u32>,
}

impl SimResult {
    /// Nash product of all processes' mean speed-ups (Fig. 7a).
    #[must_use]
    pub fn nash_product(&self) -> f64 {
        rubic_metrics::nash_product(
            &self
                .processes
                .iter()
                .map(ProcessResult::mean_speedup)
                .collect::<Vec<_>>(),
        )
    }

    /// Product of all processes' efficiencies (Fig. 7c).
    #[must_use]
    pub fn total_efficiency(&self) -> f64 {
        self.processes
            .iter()
            .map(ProcessResult::efficiency)
            .product()
    }

    /// Mean total software threads over rounds where at least one
    /// process is active (Fig. 7b).
    #[must_use]
    pub fn mean_total_threads(&self) -> f64 {
        let busy: Vec<f64> = self
            .total_threads
            .iter()
            .filter(|&&t| t > 0)
            .map(|&t| f64::from(t))
            .collect();
        if busy.is_empty() {
            0.0
        } else {
            busy.iter().sum::<f64>() / busy.len() as f64
        }
    }
}

struct LiveProcess {
    spec: ProcessSpec,
    controller: Box<dyn Controller>,
    mapper: Box<dyn Mapper>,
    level: u32,
    trace: LevelTrace,
    spread_sum: f64,
    spread_rounds: u64,
}

/// Runs one simulation.
///
/// Deterministic given (`specs`, `cfg`): identical inputs produce
/// identical traces (the controllers and the seeded noise stream are the
/// only state).
#[must_use]
pub fn run(specs: &[ProcessSpec], cfg: &SimConfig) -> SimResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut live: Vec<LiveProcess> = specs
        .iter()
        .map(|spec| LiveProcess {
            spec: spec.clone(),
            controller: spec.policy.build(&cfg.policy_cfg),
            mapper: spec.mapping.build(),
            level: spec.initial_level.max(1),
            trace: LevelTrace::with_capacity(cfg.rounds as usize),
            spread_sum: 0.0,
            spread_rounds: 0,
        })
        .collect();

    let mut total_threads = Vec::with_capacity(cfg.rounds as usize);
    let mut machine = cfg.machine;
    let mut pending_changes = cfg.machine_changes.iter().peekable();

    for round in 0..cfg.rounds {
        while pending_changes.peek().is_some_and(|&&(r, _)| r <= round) {
            machine = pending_changes.next().expect("peeked").1;
        }
        // System state at the start of the round: every active process's
        // current level contributes runnable threads.
        let total: u32 = live
            .iter()
            .filter(|p| p.spec.active(round))
            .map(|p| p.level)
            .sum();
        total_threads.push(total);

        let topo = machine.topology();
        for p in &mut live {
            if !p.spec.active(round) {
                continue;
            }
            let intrinsic = p.spec.curve.speedup(f64::from(p.level));
            // The conflict signal the adaptive mapper consumes: the
            // process's efficiency deficit at its current level (how far
            // its own curve falls short of linear — the simulator's
            // stand-in for the abort rate the real runtime measures).
            let conflict = (1.0 - intrinsic / f64::from(p.level.max(1))).clamp(0.0, 1.0);
            let placement = p.mapper.place(p.level, &topo, conflict);
            p.spread_sum += placement.spread_fraction();
            p.spread_rounds += 1;
            let eff = machine.effective_speedup_placed(
                intrinsic,
                total,
                &placement,
                p.spec.comm_intensity,
            );
            let mut throughput = eff * p.spec.seq_throughput;
            if cfg.noise > 0.0 {
                throughput *= 1.0 + rng.gen_range(-cfg.noise..=cfg.noise);
            }
            p.trace.push(round, p.level, throughput);
            p.level = p
                .controller
                .decide(Sample {
                    throughput,
                    level: p.level,
                    round,
                })
                .clamp(1, p.controller.max_level());
        }
    }

    SimResult {
        processes: live
            .into_iter()
            .map(|p| ProcessResult {
                name: p.spec.name,
                policy: p.spec.policy.label(),
                mapping: p.spec.mapping.label(),
                trace: p.trace,
                seq_throughput: p.spec.seq_throughput,
                mean_spread: if p.spread_rounds == 0 {
                    0.0
                } else {
                    p.spread_sum / p.spread_rounds as f64
                },
            })
            .collect(),
        total_threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves;

    fn cfg(n: u32) -> SimConfig {
        SimConfig::paper(n)
    }

    #[test]
    fn single_rubic_process_converges_to_machine_limit() {
        // Fig. 5 scenario: one perfectly scalable process under CIMD-
        // style control on 64 contexts; steady-state level near 64,
        // utilisation ≳ 85%.
        let specs = [ProcessSpec::new(
            "rbt-ro",
            curves::rbt_readonly(),
            Policy::Rubic,
        )];
        let r = run(&specs, &cfg(1));
        let trace = &r.processes[0].trace;
        let tail_mean = trace.mean_level_in(300, 1000);
        assert!(
            (52.0..=72.0).contains(&tail_mean),
            "steady-state level {tail_mean}"
        );
    }

    #[test]
    fn aimd_underutilizes_vs_rubic() {
        // §2.2: AIMD (α = 0.5) averages ~75% utilisation, cubic growth
        // ~90%+ on the same workload.
        let mk = |policy| {
            let specs = [ProcessSpec::new("p", curves::rbt_readonly(), policy)];
            let r = run(&specs, &cfg(1));
            r.processes[0].trace.mean_level_in(300, 1000).min(64.0) / 64.0
        };
        let aimd = mk(Policy::Aimd);
        let rubic = mk(Policy::Rubic);
        assert!(
            (0.62..=0.88).contains(&aimd),
            "AIMD utilisation {aimd} not ~75%"
        );
        assert!(rubic > aimd + 0.05, "RUBIC {rubic} vs AIMD {aimd}");
    }

    #[test]
    fn intruder_process_settles_near_its_peak() {
        let specs = [ProcessSpec::new(
            "intruder",
            curves::intruder_like(),
            Policy::Rubic,
        )];
        let r = run(&specs, &cfg(1));
        let mean = r.processes[0].trace.mean_level_in(300, 1000);
        assert!(
            (4.0..=14.0).contains(&mean),
            "intruder level {mean} not near its 7-thread peak"
        );
    }

    #[test]
    fn greedy_pair_oversubscribes_rubic_pair_does_not() {
        let pair = |policy| {
            let specs = [
                ProcessSpec::new("a", curves::rbt_readonly(), policy),
                ProcessSpec::new("b", curves::rbt_readonly(), policy),
            ];
            run(&specs, &cfg(2)).mean_total_threads()
        };
        assert!(pair(Policy::Greedy) > 64.0);
        let rubic_total = pair(Policy::Rubic);
        assert!(
            rubic_total <= 70.0,
            "RUBIC pair oversubscribes on average: {rubic_total}"
        );
    }

    #[test]
    fn arrival_and_departure_windows() {
        let specs = [
            ProcessSpec::new("p1", curves::rbt_readonly(), Policy::Rubic),
            ProcessSpec::new("p2", curves::rbt_readonly(), Policy::Rubic)
                .arrives_at(500)
                .departs_at(800),
        ];
        let r = run(&specs, &cfg(2));
        assert_eq!(r.processes[0].trace.len(), 1000);
        assert_eq!(r.processes[1].trace.len(), 300);
        let p2 = &r.processes[1].trace;
        assert_eq!(p2.points().first().unwrap().round, 500);
        assert_eq!(p2.points().last().unwrap().round, 799);
    }

    #[test]
    fn determinism() {
        let specs = [
            ProcessSpec::new("a", curves::vacation_like(), Policy::Rubic),
            ProcessSpec::new("b", curves::intruder_like(), Policy::Ebs),
        ];
        let c = cfg(2).with_noise(0.02, 7);
        let r1 = run(&specs, &c);
        let r2 = run(&specs, &c);
        assert_eq!(r1.processes[0].trace, r2.processes[0].trace);
        assert_eq!(r1.processes[1].trace, r2.processes[1].trace);
        // Different seed, different noise, different trace.
        let r3 = run(&specs, &cfg(2).with_noise(0.02, 8));
        assert_ne!(r1.processes[0].trace, r3.processes[0].trace);
    }

    #[test]
    fn equal_share_splits_contexts() {
        let specs = [
            ProcessSpec::new("a", curves::rbt_readonly(), Policy::EqualShare),
            ProcessSpec::new("b", curves::intruder_like(), Policy::EqualShare),
        ];
        let r = run(&specs, &cfg(2));
        for p in &r.processes {
            assert!((p.mean_level() - 32.0).abs() < 1.0, "{}", p.name);
        }
    }

    #[test]
    fn four_socket_machine_with_zero_comm_matches_flat() {
        // The acceptance gate for the topology extension: with the
        // default comm_intensity = 0 and blind mapping, the 4-socket
        // paper machine and an explicitly flattened one produce
        // bit-identical traces — existing figures are untouched.
        let specs = [
            ProcessSpec::new("a", curves::vacation_like(), Policy::Rubic),
            ProcessSpec::new("b", curves::intruder_like(), Policy::Ebs),
        ];
        let four = cfg(2).with_noise(0.02, 7);
        let mut flat = four.clone();
        flat.machine = flat.machine.with_sockets(1);
        let r4 = run(&specs, &four);
        let r1 = run(&specs, &flat);
        for (a, b) in r4.processes.iter().zip(&r1.processes) {
            assert_eq!(a.trace, b.trace);
        }
        assert_eq!(r4.total_threads, r1.total_threads);
    }

    #[test]
    fn mapping_choices_match_their_workloads() {
        // High-comm process: compact beats scatter (one LLC, cheap
        // conflicts). Low-comm pinned process: scatter beats blind
        // (aggregate bandwidth).
        let speedup = |curve: crate::Curve, comm: f64, mapping, level: u32| {
            let specs = [ProcessSpec::new("p", curve, Policy::Fixed(level))
                .starts_at_level(level)
                .comm_intensity(comm)
                .mapping(mapping)];
            run(&specs, &cfg(1)).processes[0].mean_speedup()
        };
        let comm_compact = speedup(curves::intruder_like(), 0.9, MappingPolicy::Compact, 7);
        let comm_scatter = speedup(curves::intruder_like(), 0.9, MappingPolicy::Scatter, 7);
        assert!(
            comm_compact > comm_scatter * 1.2,
            "compact {comm_compact} should beat scatter {comm_scatter} at comm=0.9"
        );
        let ro_scatter = speedup(curves::rbt_readonly(), 0.0, MappingPolicy::Scatter, 32);
        let ro_blind = speedup(curves::rbt_readonly(), 0.0, MappingPolicy::Blind, 32);
        assert!(
            ro_scatter > ro_blind,
            "pinned scatter {ro_scatter} should beat blind {ro_blind} at comm=0"
        );
    }

    #[test]
    fn placement_aware_rubic_beats_blind_rubic_when_colocated() {
        // The headline co-location scenario: two communicating tenants
        // (Intruder + Vacation) under RUBIC on the 4-socket machine.
        // Same controller, same curves — only the mapping differs.
        let nash = |mapping| {
            let specs = [
                ProcessSpec::new("intruder", curves::intruder_like(), Policy::Rubic)
                    .comm_intensity(0.9)
                    .mapping(mapping),
                ProcessSpec::new("vacation", curves::vacation_like(), Policy::Rubic)
                    .comm_intensity(0.5)
                    .mapping(mapping),
            ];
            run(&specs, &cfg(2).with_noise(0.02, 11)).nash_product()
        };
        let blind = nash(MappingPolicy::Blind);
        let aware = nash(MappingPolicy::AdaptiveAbort);
        assert!(
            aware > blind * 1.1,
            "placement-aware RUBIC ({aware}) should beat blind ({blind}) by >10%"
        );
    }

    #[test]
    fn mean_spread_reflects_the_mapping() {
        let spec = |mapping| {
            [
                ProcessSpec::new("p", curves::rbt_readonly(), Policy::Fixed(64))
                    .starts_at_level(64)
                    .mapping(mapping),
            ]
        };
        let compact = run(&spec(MappingPolicy::Compact), &cfg(1)).processes[0].mean_spread;
        let scatter = run(&spec(MappingPolicy::Scatter), &cfg(1)).processes[0].mean_spread;
        // Level 64 fills the machine either way, so compact spreads too
        // — but below capacity the difference is stark.
        assert!(scatter >= compact);
        let compact16 = run(
            &[
                ProcessSpec::new("p", curves::rbt_readonly(), Policy::Fixed(16))
                    .starts_at_level(16)
                    .mapping(MappingPolicy::Compact),
            ],
            &cfg(1),
        )
        .processes[0]
            .mean_spread;
        assert_eq!(compact16, 0.0);
    }

    #[test]
    fn nash_and_efficiency_are_positive() {
        let specs = [
            ProcessSpec::new("a", curves::vacation_like(), Policy::Rubic),
            ProcessSpec::new("b", curves::rbt_like(), Policy::Rubic),
        ];
        let r = run(&specs, &cfg(2));
        assert!(r.nash_product() > 0.0);
        assert!(r.total_efficiency() > 0.0);
    }
}
