//! Scalability curves: `S(l)` — the speed-up a workload attains with
//! `l` dedicated threads.
//!
//! §4.4 of the paper: *"our techniques only depend on the scalability
//! curve defined by each running process. The only requirement is that
//! the scalability graph of the workloads must monotonically increase
//! until its peak point."* The simulator therefore characterises each
//! process entirely by such a curve. Curves express the workload's
//! *intrinsic* scalability (conflicts, serial fractions) assuming the
//! machine has enough contexts; machine-level effects — time slicing
//! and oversubscription penalties when total software threads exceed
//! hardware contexts — are applied separately by
//! [`crate::machine::Machine`].
//!
//! Presets are fitted to the paper's Fig. 1 and Fig. 6 shapes:
//! Intruder peaks at 7 threads and falls below 0.5× sequential by 64;
//! Vacation peaks around 32; the 98 %-look-up red-black tree scales far
//! and gently; the conflict-free read-only variant is perfectly linear.

use std::sync::Arc;

/// A workload's intrinsic speed-up as a function of its thread count.
///
/// Implementations must return `S(1) = 1` (speed-up is relative to the
/// sequential execution) and be monotonically increasing up to a single
/// peak. `l` is fractional because the machine model evaluates curves
/// at effective (time-sliced) parallelism levels.
pub trait ScalabilityCurve: Send + Sync + std::fmt::Debug {
    /// Speed-up at parallelism `l >= 1`.
    fn speedup(&self, l: f64) -> f64;

    /// Curve label for reports.
    fn name(&self) -> &str;
}

/// The Universal Scalability Law:
/// `S(l) = l / (1 + σ·(l−1) + κ·l·(l−1))`.
///
/// `σ` models contention (serialisation), `κ` models coherency
/// (crosstalk — for TM workloads, conflicts and abort retries). With
/// `κ > 0` the curve peaks at `l* ≈ √((1−σ)/κ)` and declines beyond —
/// the retrograde scaling of Fig. 1.
#[derive(Debug, Clone)]
pub struct UslCurve {
    sigma: f64,
    kappa: f64,
    name: String,
}

impl UslCurve {
    /// Creates a USL curve.
    ///
    /// # Panics
    /// Panics if `sigma < 0` or `kappa < 0`.
    #[must_use]
    pub fn new(sigma: f64, kappa: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(kappa >= 0.0, "kappa must be non-negative");
        UslCurve {
            sigma,
            kappa,
            name: format!("usl(σ={sigma},κ={kappa})"),
        }
    }

    /// The parallelism level at which the curve peaks (∞ for κ = 0).
    #[must_use]
    pub fn peak_level(&self) -> f64 {
        if self.kappa == 0.0 {
            f64::INFINITY
        } else {
            ((1.0 - self.sigma) / self.kappa).sqrt()
        }
    }
}

impl ScalabilityCurve for UslCurve {
    fn speedup(&self, l: f64) -> f64 {
        let l = l.max(0.0);
        let denom = 1.0 + self.sigma * (l - 1.0) + self.kappa * l * (l - 1.0);
        if denom <= 0.0 {
            0.0
        } else {
            l / denom
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Amdahl's law: `S(l) = 1 / ((1−p) + p/l)` for parallel fraction `p` —
/// monotone, saturating, never retrograde (the USL with κ = 0 up to
/// reparameterisation).
#[derive(Debug, Clone)]
pub struct AmdahlCurve {
    parallel_fraction: f64,
    name: String,
}

impl AmdahlCurve {
    /// Creates an Amdahl curve with parallel fraction `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "parallel fraction in [0,1]");
        AmdahlCurve {
            parallel_fraction: p,
            name: format!("amdahl(p={p})"),
        }
    }
}

impl ScalabilityCurve for AmdahlCurve {
    fn speedup(&self, l: f64) -> f64 {
        let l = l.max(1e-9);
        1.0 / ((1.0 - self.parallel_fraction) + self.parallel_fraction / l)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A rise-then-decay curve with explicit peak position and height:
/// concave power-law rise from `S(1) = 1` to `S(peak_l) = peak_s`, then
/// exponential decay at `decay` per thread beyond the peak. This is the
/// workhorse for matching the paper's plotted shapes exactly.
#[derive(Debug, Clone)]
pub struct PeakCurve {
    peak_l: f64,
    peak_s: f64,
    rise_exp: f64,
    decay: f64,
    name: String,
}

impl PeakCurve {
    /// Creates a peak curve.
    ///
    /// * `peak_l` — thread count of the throughput peak (> 1).
    /// * `peak_s` — speed-up at the peak (>= 1).
    /// * `rise_exp` — concavity of the rise (1 = linear, < 1 concave).
    /// * `decay` — exponential decline rate beyond the peak (>= 0).
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    #[must_use]
    pub fn new(peak_l: f64, peak_s: f64, rise_exp: f64, decay: f64) -> Self {
        assert!(peak_l > 1.0, "peak level must exceed 1");
        assert!(peak_s >= 1.0, "peak speed-up must be at least 1");
        assert!(rise_exp > 0.0, "rise exponent must be positive");
        assert!(decay >= 0.0, "decay must be non-negative");
        PeakCurve {
            peak_l,
            peak_s,
            rise_exp,
            decay,
            name: format!("peak(l={peak_l},s={peak_s})"),
        }
    }
}

impl ScalabilityCurve for PeakCurve {
    fn speedup(&self, l: f64) -> f64 {
        if l <= 0.0 {
            return 0.0;
        }
        if l <= self.peak_l {
            let t = ((l - 1.0) / (self.peak_l - 1.0)).clamp(0.0, 1.0);
            1.0 + (self.peak_s - 1.0) * t.powf(self.rise_exp)
        } else {
            self.peak_s * (-self.decay * (l - self.peak_l)).exp()
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Perfectly linear scaling: `S(l) = l`. The intrinsic curve of the
/// conflict-free read-only red-black tree (§4.6); the 64-context limit
/// is imposed by the machine model, not the workload.
#[derive(Debug, Clone, Default)]
pub struct LinearCurve;

impl ScalabilityCurve for LinearCurve {
    fn speedup(&self, l: f64) -> f64 {
        l.max(0.0)
    }

    fn name(&self) -> &str {
        "linear"
    }
}

/// A tabulated curve with linear interpolation between integer levels —
/// for feeding *measured* scalability graphs (e.g. from the in-vivo
/// sweep) back into the simulator.
#[derive(Debug, Clone)]
pub struct TableCurve {
    /// `points[i]` is `S(i + 1)`.
    points: Vec<f64>,
    name: String,
}

impl TableCurve {
    /// Creates a table curve from `S(1), S(2), ...`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    #[must_use]
    pub fn new(points: Vec<f64>, name: impl Into<String>) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        TableCurve {
            points,
            name: name.into(),
        }
    }
}

impl ScalabilityCurve for TableCurve {
    fn speedup(&self, l: f64) -> f64 {
        if l <= 1.0 {
            return self.points[0] * l.max(0.0);
        }
        let idx = l - 1.0;
        let lo = idx.floor() as usize;
        let hi = lo + 1;
        if hi >= self.points.len() {
            return *self.points.last().expect("non-empty");
        }
        let frac = idx - lo as f64;
        self.points[lo] * (1.0 - frac) + self.points[hi] * frac
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Shared curve handle.
pub type Curve = Arc<dyn ScalabilityCurve>;

/// Intruder-like curve (Fig. 1): peak at 7 threads with ~3.5× speed-up,
/// collapsing to < 0.5× sequential by 64 threads.
#[must_use]
pub fn intruder_like() -> Curve {
    Arc::new(PeakCurve::new(7.0, 3.5, 0.9, 0.036))
}

/// Vacation-like curve (Fig. 6 middle of the spectrum): peak around 32
/// threads at ~14×, with a gentle decline beyond.
#[must_use]
pub fn vacation_like() -> Curve {
    Arc::new(PeakCurve::new(32.0, 14.0, 0.8, 0.006))
}

/// Red-black-tree 98 %-look-up curve: scales far (peak ~56 at ~30×) and
/// declines only slightly.
#[must_use]
pub fn rbt_like() -> Curve {
    Arc::new(PeakCurve::new(56.0, 30.0, 0.88, 0.002))
}

/// Conflict-free read-only red-black tree (§4.6): perfectly scalable;
/// all limits come from the hardware.
#[must_use]
pub fn rbt_readonly() -> Curve {
    Arc::new(LinearCurve)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monotone_to_peak(c: &dyn ScalabilityCurve, peak: f64) {
        let mut prev = 0.0;
        let mut l = 1.0;
        while l <= peak {
            let s = c.speedup(l);
            assert!(s >= prev - 1e-9, "{} not monotone at {l}", c.name());
            prev = s;
            l += 1.0;
        }
    }

    #[test]
    fn all_curves_start_at_one() {
        let curves: Vec<Curve> = vec![
            Arc::new(UslCurve::new(0.05, 0.001)),
            Arc::new(AmdahlCurve::new(0.95)),
            Arc::new(PeakCurve::new(7.0, 3.5, 0.9, 0.036)),
            Arc::new(LinearCurve),
            intruder_like(),
            vacation_like(),
            rbt_like(),
            rbt_readonly(),
        ];
        for c in &curves {
            assert!(
                (c.speedup(1.0) - 1.0).abs() < 1e-9,
                "{}: S(1) = {}",
                c.name(),
                c.speedup(1.0)
            );
        }
    }

    #[test]
    fn usl_peak_location() {
        let c = UslCurve::new(0.0, 0.01);
        let peak = c.peak_level();
        assert!((peak - 10.0).abs() < 1e-9);
        assert!(c.speedup(peak) > c.speedup(peak + 5.0));
        assert!(c.speedup(peak) > c.speedup(peak - 5.0));
        monotone_to_peak(&c, peak);
    }

    #[test]
    fn usl_kappa_zero_never_declines() {
        let c = UslCurve::new(0.1, 0.0);
        assert!(c.speedup(128.0) > c.speedup(64.0));
        assert_eq!(c.peak_level(), f64::INFINITY);
    }

    #[test]
    fn amdahl_saturates_at_serial_limit() {
        let c = AmdahlCurve::new(0.9);
        // Limit = 1/(1-p) = 10.
        assert!(c.speedup(10_000.0) < 10.0);
        assert!(c.speedup(10_000.0) > 9.9);
        monotone_to_peak(&c, 100.0);
    }

    #[test]
    fn intruder_matches_fig1_shape() {
        let c = intruder_like();
        monotone_to_peak(c.as_ref(), 7.0);
        let s7 = c.speedup(7.0);
        // Peak at 7: neighbours are lower.
        assert!(s7 > c.speedup(6.0));
        assert!(s7 > c.speedup(8.0));
        // Collapse: at 64 threads, less than half of sequential.
        assert!(
            c.speedup(64.0) < 0.5,
            "S(64) = {} not < 0.5",
            c.speedup(64.0)
        );
    }

    #[test]
    fn vacation_peaks_mid_spectrum() {
        let c = vacation_like();
        monotone_to_peak(c.as_ref(), 32.0);
        assert!(c.speedup(32.0) > c.speedup(40.0));
        assert!(c.speedup(64.0) > 8.0, "decline too harsh");
    }

    #[test]
    fn rbt_scales_far() {
        let c = rbt_like();
        monotone_to_peak(c.as_ref(), 56.0);
        assert!(c.speedup(56.0) >= 29.0);
        assert!(c.speedup(64.0) > 25.0);
    }

    #[test]
    fn readonly_is_linear() {
        let c = rbt_readonly();
        assert_eq!(c.speedup(64.0), 64.0);
        assert_eq!(c.speedup(1.0), 1.0);
    }

    #[test]
    fn ordering_of_scalability_spectrum() {
        // Fig. 6: at high thread counts RBT > Vacation > Intruder.
        let (i, v, r) = (intruder_like(), vacation_like(), rbt_like());
        for l in [16.0, 32.0, 48.0, 64.0] {
            assert!(r.speedup(l) > v.speedup(l), "l={l}");
            assert!(v.speedup(l) > i.speedup(l), "l={l}");
        }
    }

    #[test]
    fn table_curve_interpolates() {
        let c = TableCurve::new(vec![1.0, 2.0, 4.0], "t");
        assert_eq!(c.speedup(1.0), 1.0);
        assert_eq!(c.speedup(2.0), 2.0);
        assert!((c.speedup(1.5) - 1.5).abs() < 1e-12);
        assert!((c.speedup(2.5) - 3.0).abs() < 1e-12);
        // Clamps past the end.
        assert_eq!(c.speedup(10.0), 4.0);
        // Below 1 scales towards zero.
        assert!((c.speedup(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractional_levels_are_smooth() {
        let c = vacation_like();
        let a = c.speedup(10.0);
        let b = c.speedup(10.5);
        let d = c.speedup(11.0);
        assert!(a <= b && b <= d);
    }
}
