//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Mirrors the API shape the workspace uses: infallible `lock()` (poison
//! is swallowed — a panicking critical section in this codebase already
//! aborts the test run, and `parking_lot` has no poisoning either),
//! `Condvar::wait(&mut guard)` and `wait_for(&mut guard, timeout)`.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value` (usable in statics, as upstream).
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is an implementation detail: `Condvar::wait` must
/// move the std guard out and back while the wrapper stays borrowed.
/// It is `Some` at every moment user code can observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard invariant: always Some")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard invariant: always Some")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable (usable in statics, as upstream).
    #[must_use]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and waits for a
    /// notification, reacquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant: always Some");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Timed variant of [`wait`](Self::wait).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard invariant: always Some");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value` (usable in statics, as upstream).
    #[must_use]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            *ready = true;
            drop(ready);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        h.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (7, 7));
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
