//! Offline stand-in for `fxhash`: the multiply-rotate hash function
//! used by rustc and Firefox (a.k.a. FxHash), exposed through the
//! standard `Hasher`/`BuildHasherDefault` machinery.
//!
//! FxHash trades avalanche quality for speed: one rotate, one xor and
//! one multiply per word, no per-instance keys. That makes it wholly
//! unsuitable for attacker-controlled keys (use SipHash there) and
//! excellent for the STM's transaction-private read/write-set indices,
//! whose keys are lock addresses that live entirely inside one process:
//! hashing a `usize` key compiles to three instructions instead of
//! SipHash's multi-round permutation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized builder producing default-initialised [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit golden-ratio-derived odd multiplier (same constant as
/// upstream fxhash / rustc-hash on 64-bit targets).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash state: a single word folded once per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Fold the tail length in so "ab" + "" and "a" + "b" split
            // across writes cannot collide trivially.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = hash_of(|h| h.write_usize(0x1000));
        let b = hash_of(|h| h.write_usize(0x1000));
        let c = hash_of(|h| h.write_usize(0x1008));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(hash_of(|h| h.write_u64(1)), 0);
    }

    #[test]
    fn byte_stream_tail_is_length_aware() {
        let ab = hash_of(|h| h.write(b"ab"));
        let a = hash_of(|h| h.write(b"a"));
        assert_ne!(ab, a);
    }

    #[test]
    fn map_roundtrip_with_addr_like_keys() {
        let mut m: FxHashMap<usize, u64> = FxHashMap::default();
        // Lock addresses are word-aligned; make sure the hash does not
        // degenerate on low-entropy low bits.
        for i in 0..1000usize {
            m.insert(0x7f00_0000_0000 + i * 64, i as u64);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000usize {
            assert_eq!(m[&(0x7f00_0000_0000 + i * 64)], i as u64);
        }
    }

    #[test]
    fn set_alias_works() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }
}
