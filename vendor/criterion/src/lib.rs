//! Offline stand-in for `criterion`: the same macro/entry-point surface
//! (`criterion_group!`/`criterion_main!`/`Criterion`/`Bencher`), backed
//! by a bare-bones wall-clock timer instead of statistical sampling.
//! Good enough to keep `cargo bench` runnable and benchmarks compiling;
//! numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness does not sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness does not sample.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter value.
    #[must_use]
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function name and parameter.
    #[must_use]
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

/// Conversion into a printable benchmark id (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the most recent `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean duration per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, then time enough iterations to fill a small budget.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(50);
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= 100_000 {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("bench {name:60} {:>14.1} ns/iter", b.ns_per_iter);
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("fmt", |b| b.iter(|| format!("{}", black_box(3))));
        group.finish();
    }

    #[test]
    fn harness_runs_everything() {
        criterion_group!(benches, quick);
        benches();
    }
}
