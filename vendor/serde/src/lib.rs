//! Offline stand-in for `serde`. The workspace only uses
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize,
//! serde::Deserialize))]` markers behind off-by-default features; these
//! marker traits plus inert derive macros keep those attributes
//! compiling without pulling in a serialization framework.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
