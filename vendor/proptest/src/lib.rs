//! Offline stand-in for `proptest`: same macro and strategy surface the
//! workspace's property tests use, minus shrinking. Failing cases print
//! the case number and the seed recipe (`PROPTEST_SEED`) so a failure
//! reproduces exactly; they just don't minimize.
//!
//! Determinism: every test function derives its per-case RNG from
//! (global seed, test name, case index), so a run is reproducible with
//! `PROPTEST_SEED=<n> cargo test <name>` regardless of test ordering or
//! thread scheduling.

// Let paths like `proptest::collection::vec(...)` written inside this
// crate's own tests resolve the same way they do in dependents.
extern crate self as proptest;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Non-panicking failure raised by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test-run configuration. Only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic per-case random source (SplitMix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Default global seed when `PROPTEST_SEED` is unset (arbitrary
/// constant; fixed so unconfigured runs are deterministic).
const SEED_DEFAULT: u64 = 0x5EED_0FCA_11AB_1E00;

fn global_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED_DEFAULT)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives `f` for `config.cases` deterministic cases. Panics (failing
/// the enclosing `#[test]`) on the first case that fails, printing the
/// case index and reproduction seed.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = global_seed();
    for case in 0..config.cases {
        let case_seed = seed ^ fnv1a(name.as_bytes()) ^ (u64::from(case) << 32 | 0x9E37);
        let mut rng = TestRng::from_seed(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                panic!(
                    "proptest case failed: {name} (case {case}/{total}, seed {seed:#x}): {e}\n\
                     reproduce with: PROPTEST_SEED={seed} cargo test {name}",
                    total = config.cases,
                );
            }
            Err(payload) => {
                eprintln!(
                    "proptest case panicked: {name} (case {case}/{total}, seed {seed:#x})\n\
                     reproduce with: PROPTEST_SEED={seed} cargo test {name}",
                    total = config.cases,
                );
                resume_unwind(payload);
            }
        }
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream there is no value tree / shrinking: `generate`
/// produces a final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over `alternatives` (must be non-empty).
    #[must_use]
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let draw = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                (*self.start() as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded uniform rather than raw bit soup: tests use these as
        // ordinary magnitudes, and NaN/infinity would add no coverage
        // the workspace asserts on.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            debug_assert!(self.lo < self.hi);
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy yielding `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy yielding `BTreeSet`s of `element` with a size in `size`.
    ///
    /// Like upstream, a narrow element domain may yield fewer elements
    /// than requested (duplicates collapse); generation never spins
    /// forever trying to hit an unreachable size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Optional-value strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...)` becomes
/// a unit test running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($parm:pat_param in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, stringify!($name), |prop_rng| {
                    $(let $parm = $crate::Strategy::generate(&($strat), prop_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    return Ok(());
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted-or-uniform choice between strategies of one value type.
/// (Only the uniform, unweighted form is supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Non-panicking assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Non-panicking equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`: {}",
                        l, r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let b = Strategy::generate(&(b'a'..=b'z'), &mut rng);
            assert!(b.is_ascii_lowercase());
            let f = Strategy::generate(&(0.5f64..1.2), &mut rng);
            assert!((0.5..1.2).contains(&f));
        }
    }

    #[test]
    fn full_domain_ranges_do_not_overflow() {
        let mut rng = super::TestRng::from_seed(2);
        for _ in 0..100 {
            let _ = Strategy::generate(&(i64::MIN..i64::MAX), &mut rng);
            let _ = Strategy::generate(&(u64::MIN..=u64::MAX), &mut rng);
        }
    }

    #[test]
    fn same_seed_same_values() {
        let strat = proptest::collection::vec((0usize..9, -5i64..5), 3..20);
        let a = Strategy::generate(&strat, &mut super::TestRng::from_seed(9));
        let b = Strategy::generate(&strat, &mut super::TestRng::from_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn union_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = super::TestRng::from_seed(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn btree_set_narrow_domain_terminates() {
        let strat = proptest::collection::btree_set(0u8..3, 0..50);
        let set = Strategy::generate(&strat, &mut super::TestRng::from_seed(4));
        assert!(set.len() <= 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple params, trailing comma.
        #[test]
        fn macro_roundtrip(
            xs in proptest::collection::vec(0u32..10, 1..8),
            (a, b) in (0i16..5, 0i16..5),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 8, "len {}", xs.len());
            prop_assert_eq!((a + b) as i32, i32::from(a) + i32::from(b));
        }
    }
}
