//! Offline stand-in for `crossbeam-utils`: just [`CachePadded`], which is
//! all this workspace uses (per-worker counters and per-`Stm` stats that
//! must not false-share a cache line).

/// Pads and aligns a value to (at least) a cache-line boundary.
///
/// 128-byte alignment covers the common 64-byte line size plus adjacent
/// line prefetchers on modern x86, matching upstream's choice for
/// x86-64/aarch64.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    #[must_use]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let c = CachePadded::new(5u64);
        assert_eq!(*c, 5);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        assert_eq!(c.into_inner(), 5);
    }

    #[test]
    fn deref_mut_updates() {
        let mut c = CachePadded::new(1u32);
        *c += 9;
        assert_eq!(*c, 10);
    }
}
