//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`] shuffling.
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets — so seeded
//! streams are deterministic, fast, and of adequate statistical quality
//! for workload generation and tests (not for cryptography).

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed via SplitMix64 expansion
    /// (identical streams for identical seeds, on every platform).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive, integer
    /// or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0.0, 1.0]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        distributions::unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a type with a canonical uniform distribution.
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// SplitMix64: seed expander and stand-alone generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw state word.
    #[must_use]
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// xoshiro256++ core shared by [`SmallRng`] and [`StdRng`].
    #[derive(Debug, Clone)]
    pub struct Xoshiro256PlusPlus {
        s: [u64; 4],
    }

    impl RngCore for Xoshiro256PlusPlus {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for Xoshiro256PlusPlus {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = SplitMix64::new(state);
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = sm.next_u64();
            }
            // All-zero state is the one degenerate orbit; SplitMix64
            // cannot produce four zero words from any seed, but guard
            // anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Xoshiro256PlusPlus { s }
        }
    }

    macro_rules! named_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone)]
            pub struct $name(Xoshiro256PlusPlus);

            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(state: u64) -> Self {
                    $name(Xoshiro256PlusPlus::seed_from_u64(state))
                }
            }
        };
    }

    named_rng! {
        /// The workspace's small, fast, seedable generator.
        SmallRng
    }
    named_rng! {
        /// Stand-in for `rand`'s default generator (same core as
        /// [`SmallRng`] here; determinism is what the simulator needs).
        StdRng
    }
}

/// Range sampling and canonical distributions.
pub mod distributions {
    use super::RngCore;

    /// Converts a random word to a uniform `f64` in `[0, 1)` with 53
    /// bits of precision.
    #[inline]
    #[must_use]
    pub fn unit_f64(word: u64) -> f64 {
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A range that can be sampled uniformly, producing a `T`.
    ///
    /// Implemented once, generically, for `Range<T>`/`RangeInclusive<T>`
    /// over every [`SampleUniform`] element type — a *single* impl per
    /// range shape is what lets call-site inference flow backwards from
    /// how the sampled value is used into an unsuffixed literal range
    /// (`bases[rng.gen_range(0..4)]` infers `usize`).
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Element types that support uniform sampling between two bounds.
    pub trait SampleUniform: Sized {
        /// Uniform sample in `[lo, hi)` (`inclusive = false`) or
        /// `[lo, hi]` (`inclusive = true`).
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_between(lo, hi, true, rng)
        }
    }

    macro_rules! int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: $t,
                    hi: $t,
                    inclusive: bool,
                    rng: &mut R,
                ) -> $t {
                    // i128/u128 arithmetic handles every integer type up
                    // to the full u64/i64 domain without overflow.
                    let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                    assert!(span > 0, "gen_range: empty range");
                    let draw =
                        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span as u128;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: $t,
                    hi: $t,
                    inclusive: bool,
                    rng: &mut R,
                ) -> $t {
                    // The closed upper bound has measure zero for floats;
                    // half-open sampling is indistinguishable in practice.
                    assert!(if inclusive { lo <= hi } else { lo < hi },
                            "gen_range: empty range");
                    lo + unit_f64(rng.next_u64()) as $t * (hi - lo)
                }
            }
        )*};
    }

    float_uniform!(f32, f64);

    /// Types with a canonical uniform distribution (`Rng::gen`).
    pub trait Standard {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        let mut a = SmallRng::seed_from_u64(42);
        let other: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let b = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "p=0.25 measured {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..u64::MAX);
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }
}
