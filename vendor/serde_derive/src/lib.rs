//! Inert `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the in-repo serde stand-in: they accept the annotated item and emit
//! nothing, which is exactly what the workspace's cfg-gated derive
//! attributes need to compile.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
