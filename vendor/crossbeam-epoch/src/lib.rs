//! Offline stand-in for `crossbeam-epoch`: classic three-epoch
//! reclamation with the same public shape (`pin`/[`Guard`]/[`Atomic`]/
//! [`Owned`]/[`Shared`]) but a deliberately simple implementation.
//!
//! # Protocol
//!
//! A global epoch counter advances only when every *pinned* participant
//! has announced the current epoch. Retiring a pointer tags it with the
//! epoch at retirement time `e_r`; it is freed once the global epoch `G`
//! satisfies `e_r + 2 <= G`.
//!
//! Why that is safe: a thread pins by announcing the global epoch it
//! read, then re-checking that the global has not moved (retrying if it
//! has). From that moment until it unpins, the global can advance at
//! most once past its announced epoch `g` (advancing twice would require
//! the participant to re-announce), so `G <= g + 1`. Any reader that
//! can still hold a retired pointer loaded it while pinned, hence was
//! pinned no later than retirement: `g <= e_r`. While it stays pinned,
//! `G <= e_r + 1 < e_r + 2` — the free condition cannot be reached, so
//! the pointer outlives every reader that might dereference it.
//!
//! Simplifications vs. upstream: one global participant registry behind
//! a mutex (touched only at thread birth/death and when attempting an
//! epoch advance), per-thread garbage bags with an orphan queue for
//! exiting threads, and `SeqCst` everywhere instead of hand-tuned
//! fences. Throughput is lower; the reclamation guarantee is the same.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Sentinel announced epoch for a thread that is not currently pinned.
const INACTIVE: u64 = u64::MAX;

/// A retired allocation grows the local bag until this size, then a
/// collection pass runs inline.
const BAG_FLUSH_THRESHOLD: usize = 64;

static EPOCH: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Arc<Participant>>> = Mutex::new(Vec::new());
/// Garbage from exited threads, adopted by whoever collects next.
static ORPHANS: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());

struct Participant {
    /// Epoch this thread announced at pin time, or [`INACTIVE`].
    epoch: AtomicU64,
}

/// A type-erased retired allocation.
struct Deferred {
    retired_at: u64,
    ptr: *mut u8,
    dropper: unsafe fn(*mut u8),
}

// SAFETY: a `Deferred` is only constructed through the `unsafe`
// `Guard::defer_destroy`, whose contract makes the caller vouch that the
// pointee may be dropped from any thread (the workspace only retires
// `T: Send + Sync` snapshot values). The raw pointer is never
// dereferenced, only passed to its dropper exactly once.
unsafe impl Send for Deferred {}

unsafe fn drop_boxed<T>(ptr: *mut u8) {
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

struct Local {
    participant: Arc<Participant>,
    /// Re-entrant pin depth; the participant unpins at zero.
    guards: Cell<usize>,
    bag: RefCell<Vec<Deferred>>,
}

impl Local {
    fn register() -> Local {
        let participant = Arc::new(Participant {
            epoch: AtomicU64::new(INACTIVE),
        });
        lock(&REGISTRY).push(Arc::clone(&participant));
        Local {
            participant,
            guards: Cell::new(0),
            bag: RefCell::new(Vec::new()),
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Hand unfreed garbage to the orphan queue and deregister so a
        // dead thread can never stall epoch advancement.
        let leftovers = std::mem::take(&mut *self.bag.borrow_mut());
        if !leftovers.is_empty() {
            lock(&ORPHANS).extend(leftovers);
        }
        lock(&REGISTRY).retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Pins the current thread, returning a [`Guard`] that keeps every
/// pointer loaded while it lives safe from reclamation.
#[must_use]
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        if local.guards.get() == 0 {
            loop {
                let g = EPOCH.load(Ordering::SeqCst);
                local.participant.epoch.store(g, Ordering::SeqCst);
                // Re-check: if the global moved before our announcement
                // became visible we might be arbitrarily stale; retry
                // until announcement and global agree at one instant.
                if EPOCH.load(Ordering::SeqCst) == g {
                    break;
                }
            }
        }
        local.guards.set(local.guards.get() + 1);
    });
    Guard {
        _not_send: PhantomData,
    }
}

/// Attempts to advance the global epoch by one. Fails (harmlessly) if
/// any pinned participant has not yet caught up to the current epoch.
fn try_advance() {
    let g = EPOCH.load(Ordering::SeqCst);
    let registry = lock(&REGISTRY);
    for p in registry.iter() {
        let e = p.epoch.load(Ordering::SeqCst);
        if e != INACTIVE && e != g {
            return;
        }
    }
    // CAS under the registry lock: a newly registering thread is blocked
    // on the lock, and an already-registered thread pinning right now
    // either announced `g` (checked above) or will fail its re-check.
    let _ = EPOCH.compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst);
}

/// Frees every retired allocation whose epoch is two or more behind.
///
/// Cost discipline: this runs inline on the defer path every
/// [`BAG_FLUSH_THRESHOLD`] retirements, and the epoch can legitimately
/// stall for a whole scheduler timeslice when a pinned thread is
/// preempted (each transaction attempt holds one pin). During such a
/// stall the bag keeps growing, so the pass must NOT rescan it — a
/// thread-local bag is retired in monotone epoch order, which makes the
/// freeable entries exactly a prefix: find the cut by binary search and
/// drain it. A stalled epoch then costs O(log bag) per pass instead of
/// O(bag), which previously went quadratic under oversubscription.
fn collect(local: &Local) {
    try_advance();
    let g = EPOCH.load(Ordering::SeqCst);
    let mut freeable: Vec<Deferred> = Vec::new();
    {
        let mut bag = local.bag.borrow_mut();
        let cut = bag.partition_point(|d| d.retired_at.saturating_add(2) <= g);
        freeable.extend(bag.drain(..cut));
    }
    {
        // Orphans arrive in exit-time batches from different threads, so
        // they are not globally sorted; they are also rare (thread
        // death), so a linear sweep of what is almost always an empty
        // vector is fine.
        let mut orphans = lock(&ORPHANS);
        orphans.retain_mut(|d| {
            if d.retired_at.saturating_add(2) <= g {
                freeable.push(Deferred {
                    retired_at: d.retired_at,
                    ptr: d.ptr,
                    dropper: d.dropper,
                });
                false
            } else {
                true
            }
        });
    }
    // Run droppers outside both locks: a `Drop` impl may itself pin or
    // retire (e.g. a value containing another epoch-managed structure).
    for d in freeable {
        // SAFETY: each Deferred is drained exactly once, and the epoch
        // condition proves no pinned reader can still hold the pointer.
        unsafe { (d.dropper)(d.ptr) };
    }
}

/// Keeps the current thread pinned; dropping it unpins.
pub struct Guard {
    // Pinning is a per-thread property; sending a guard across threads
    // would unpin the wrong participant.
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Retires the allocation behind `shared`: it will be dropped once
    /// no pinned thread can still hold a reference to it.
    ///
    /// # Safety
    /// `shared` must point to a live `Box<T>` allocation that is no
    /// longer reachable for *new* readers (e.g. it was just swapped
    /// out), must not be retired twice, and must be droppable from any
    /// thread.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        debug_assert!(!shared.is_null(), "retiring a null pointer");
        let deferred = Deferred {
            retired_at: EPOCH.load(Ordering::SeqCst),
            ptr: shared.ptr.cast::<u8>(),
            dropper: drop_boxed::<T>,
        };
        LOCAL.with(|local| {
            local.bag.borrow_mut().push(deferred);
            if local.bag.borrow().len() >= BAG_FLUSH_THRESHOLD {
                collect(local);
            }
        });
    }

    /// Nudges reclamation forward: attempts one epoch advance and frees
    /// whatever has become unreachable-by-construction.
    pub fn flush(&self) {
        LOCAL.with(collect);
    }

    /// Unpins the thread, runs `f`, and repins. Use around blocking or
    /// long-sleeping sections (e.g. contention-manager backoff) so the
    /// thread does not hold the epoch back — and reclamation up — for
    /// the whole wait. With nested pins the thread cannot safely unpin,
    /// so `f` simply runs pinned.
    pub fn repin_after<F: FnOnce() -> R, R>(&mut self, f: F) -> R {
        let unpinned = LOCAL.with(|local| {
            if local.guards.get() == 1 {
                local.participant.epoch.store(INACTIVE, Ordering::SeqCst);
                true
            } else {
                false
            }
        });
        let result = f();
        if unpinned {
            LOCAL.with(|local| loop {
                let g = EPOCH.load(Ordering::SeqCst);
                local.participant.epoch.store(g, Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == g {
                    break;
                }
            });
        }
        result
    }

    /// Momentarily unpins and repins the thread so the global epoch can
    /// pass it. Equivalent to dropping and re-taking the guard.
    pub fn repin(&mut self) {
        LOCAL.with(|local| {
            if local.guards.get() == 1 {
                local.participant.epoch.store(INACTIVE, Ordering::SeqCst);
                loop {
                    let g = EPOCH.load(Ordering::SeqCst);
                    local.participant.epoch.store(g, Ordering::SeqCst);
                    if EPOCH.load(Ordering::SeqCst) == g {
                        break;
                    }
                }
            }
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        LOCAL.with(|local| {
            let n = local.guards.get();
            debug_assert!(n > 0, "guard count underflow");
            local.guards.set(n - 1);
            if n == 1 {
                local.participant.epoch.store(INACTIVE, Ordering::SeqCst);
            }
        });
    }
}

/// An atomic pointer to an epoch-managed heap allocation.
///
/// Like upstream, dropping an `Atomic` does **not** drop the pointee —
/// ownership of the final value must be recovered explicitly via
/// [`Atomic::try_into_owned`].
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: Atomic hands out &T (via Shared::deref under a guard) to many
// threads and moves T between threads at reclamation; both require the
// same bounds as Arc<T>.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocates `value` on the heap and points at it.
    #[must_use]
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// A null pointer.
    #[must_use]
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Loads the current pointer. The `Guard` borrow ties the returned
    /// [`Shared`]'s lifetime to the pin.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _guard: PhantomData,
        }
    }

    /// Stores `new`, returning the previous pointer.
    pub fn swap<'g>(&self, new: Owned<T>, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        let raw = Box::into_raw(new.boxed);
        Shared {
            ptr: self.ptr.swap(raw, ord),
            _guard: PhantomData,
        }
    }

    /// Recovers unique ownership of the pointee, or `None` if null.
    ///
    /// # Safety
    /// The caller must guarantee no other thread can still load or
    /// dereference this pointer (e.g. it holds `&mut` to the sole
    /// remaining handle).
    pub unsafe fn try_into_owned(self) -> Option<Owned<T>> {
        let raw = self.ptr.into_inner();
        if raw.is_null() {
            None
        } else {
            // SAFETY: caller contract — unique access, pointer came from
            // Box::into_raw in `new`/`swap`.
            Some(Owned {
                boxed: unsafe { Box::from_raw(raw) },
            })
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

/// Uniquely owned heap allocation, convertible into the shared state.
pub struct Owned<T> {
    boxed: Box<T>,
}

impl<T> Owned<T> {
    /// Heap-allocates `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Owned {
            boxed: Box::new(value),
        }
    }

    /// Consumes the handle and returns the value.
    #[must_use]
    pub fn into_box(self) -> Box<T> {
        self.boxed
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.boxed
    }
}

/// A pointer loaded under a [`Guard`]; valid for the guard's lifetime.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _guard: PhantomData<&'g Guard>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> Shared<'_, T> {
    /// True if this is the null pointer.
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    /// The pointer must be non-null and point to a live `T` retired (if
    /// at all) no earlier than the guard this `Shared` was loaded under.
    pub unsafe fn deref(&self) -> &T {
        // SAFETY: caller contract.
        unsafe { &*self.ptr }
    }

    /// Raw pointer value (diagnostic).
    #[must_use]
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }
}

/// Re-wraps a raw pointer (typically obtained from [`Shared::as_raw`])
/// so it can be passed back into guard-based APIs such as
/// [`Guard::defer_destroy`]. Mirrors upstream crossbeam's
/// `Shared: From<*const T>`.
///
/// The resulting `Shared` borrows whatever guard lifetime the caller's
/// context provides; all safety obligations stay with the eventual
/// unsafe use site (`deref` / `defer_destroy`).
impl<T> From<*const T> for Shared<'_, T> {
    fn from(raw: *const T) -> Self {
        Shared {
            ptr: raw.cast_mut(),
            _guard: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_swap_and_reclaim() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Atomic::new(DropCounter(Arc::clone(&drops)));
        {
            let guard = pin();
            let old = cell.swap(
                Owned::new(DropCounter(Arc::clone(&drops))),
                Ordering::Release,
                &guard,
            );
            assert!(!old.is_null());
            unsafe { guard.defer_destroy(old) };
        }
        // The retired value must eventually be dropped once we pump the
        // epoch with fresh pins.
        for _ in 0..64 {
            pin().flush();
            if drops.load(Ordering::SeqCst) == 1 {
                break;
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "retired value not freed");
        // Final value recovered explicitly, as TVarCore::drop does.
        let owned = unsafe { cell.try_into_owned() };
        drop(owned);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn deferred_value_outlives_concurrent_reader() {
        // A reader pinned before retirement must be able to deref after
        // the writer retires + flushes aggressively.
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(Atomic::new(DropCounter(Arc::clone(&drops))));

        let reader_guard = pin();
        let shared = cell.load(Ordering::Acquire, &reader_guard);

        let cell2 = Arc::clone(&cell);
        let drops2 = Arc::clone(&drops);
        std::thread::spawn(move || {
            let guard = pin();
            let old = cell2.swap(Owned::new(DropCounter(drops2)), Ordering::Release, &guard);
            unsafe { guard.defer_destroy(old) };
            for _ in 0..256 {
                guard.flush();
            }
        })
        .join()
        .unwrap();

        // We are still pinned from before the retirement: the value must
        // not have been dropped.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        let _still_alive: &DropCounter = unsafe { shared.deref() };
        drop(reader_guard);

        for _ in 0..64 {
            pin().flush();
            if drops.load(Ordering::SeqCst) == 1 {
                break;
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(unsafe { Arc::try_unwrap(cell).ok().unwrap().try_into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn reentrant_pins() {
        let a = pin();
        let b = pin();
        drop(a);
        // Still pinned through `b`.
        LOCAL.with(|l| assert_eq!(l.guards.get(), 1));
        drop(b);
        LOCAL.with(|l| assert_eq!(l.guards.get(), 0));
    }

    #[test]
    fn null_atomic_try_into_owned_is_none() {
        let a: Atomic<u64> = Atomic::null();
        assert!(unsafe { a.try_into_owned() }.is_none());
    }

    #[test]
    fn bag_threshold_triggers_inline_collection() {
        let drops = Arc::new(AtomicUsize::new(0));
        std::thread::spawn({
            let drops = Arc::clone(&drops);
            move || {
                let cell = Atomic::new(DropCounter(Arc::clone(&drops)));
                for _ in 0..512 {
                    let guard = pin();
                    let old = cell.swap(
                        Owned::new(DropCounter(Arc::clone(&drops))),
                        Ordering::Release,
                        &guard,
                    );
                    unsafe { guard.defer_destroy(old) };
                }
                drop(unsafe { cell.try_into_owned() });
            }
        })
        .join()
        .unwrap();
        // Orphaned leftovers are adopted by later collections.
        for _ in 0..64 {
            pin().flush();
            if drops.load(Ordering::SeqCst) == 513 {
                break;
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 513);
    }
}
