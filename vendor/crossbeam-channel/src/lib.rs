//! Offline stand-in for `crossbeam-channel`: a bounded MPMC channel.
//!
//! The important difference from `std::sync::mpsc` is that [`Receiver`]
//! here is `Sync` and `Clone` — multiple pool workers pull from one
//! shared receiver — which std's mpsc does not allow. Implemented as a
//! mutex-protected ring buffer with two condvars (not-empty/not-full)
//! and a live-sender count for disconnect detection.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The channel stayed empty for the whole timeout.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates a bounded channel with room for `cap` in-flight messages.
///
/// A capacity of zero is rounded up to one (true rendezvous channels are
/// not needed by this workspace).
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

/// Creates a channel without a capacity bound.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(usize::MAX)
}

/// The sending half of a channel. Cloneable; the channel disconnects
/// for receivers once every clone is dropped.
pub struct Sender<T>(Arc<Chan<T>>);

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `value`.
    ///
    /// Fails only when every [`Receiver`] has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < self.0.cap {
                st.queue.push_back(value);
                drop(st);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .0
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.0.lock();
            st.senders -= 1;
            st.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

/// The receiving half of a channel. Unlike `std::sync::mpsc`, this is
/// `Clone` and `Sync`: many workers may block on one shared receiver.
pub struct Receiver<T>(Arc<Chan<T>>);

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .0
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks for at most `timeout` waiting for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.0.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .0
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Returns a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.0.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.0.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.lock().queue.len()
    }

    /// True if no messages are currently buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.lock().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.0.lock();
            st.receivers -= 1;
            st.receivers
        };
        if remaining == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_empty_then_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(10u32).unwrap();
        let h = thread::spawn(move || {
            // Blocks until the main thread drains the single slot.
            tx.send(20).unwrap();
        });
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(10));
        assert_eq!(rx.recv(), Ok(20));
        h.join().unwrap();
    }

    #[test]
    fn shared_receiver_across_threads() {
        let (tx, rx) = bounded(64);
        let n_workers = 4;
        let n_msgs = 400u64;
        let rx = Arc::new(rx);
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for i in 1..=n_msgs {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, n_msgs * (n_msgs + 1) / 2);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5u8), Err(SendError(5u8)));
    }
}
